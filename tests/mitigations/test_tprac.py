"""Tests for the TPRAC policy: TB-RFMs, TREF co-design, security."""

import pytest

from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.commands import RfmProvenance
from repro.dram.config import small_test_config
from repro.mitigations.tprac import TpracPolicy


def _build(tb_window=1000.0, config=None, **mc_kwargs):
    config = config or small_test_config()
    policy = TpracPolicy(tb_window=tb_window)
    mc_kwargs.setdefault("enable_refresh", False)
    mc = MemoryController(Engine(), config, policy=policy, **mc_kwargs)
    return mc, policy


def test_requires_exactly_one_window_spec():
    with pytest.raises(ValueError):
        TpracPolicy()
    with pytest.raises(ValueError):
        TpracPolicy(tb_window=1.0, tb_window_trefi=1.0)


def test_tb_rfms_fire_periodically_without_activity():
    mc, policy = _build(tb_window=1000.0)
    mc.engine.run(until=10_500)
    records = mc.stats.rfm_records
    assert len(records) == 10
    assert all(r.provenance is RfmProvenance.TB for r in records)
    gaps = [b.time - a.time for a, b in zip(records, records[1:])]
    assert all(g == pytest.approx(1000.0, abs=400) for g in gaps)


def test_tb_window_in_trefi_units_resolved_at_attach():
    config = small_test_config()
    policy = TpracPolicy(tb_window_trefi=2.0)
    MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    assert policy.tb_window == pytest.approx(2.0 * config.timing.tREFI)


def test_rfms_are_activity_independent():
    """Same RFM schedule with and without memory traffic (the defense)."""
    mc_idle, _ = _build(tb_window=2000.0)
    mc_idle.engine.run(until=20_000)
    idle_times = [r.time for r in mc_idle.stats.rfm_records]

    mc_busy, _ = _build(tb_window=2000.0)
    addr = bank_address(mc_busy, 0, 1)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 100:
            return
        state["n"] += 1
        mc_busy.enqueue(MemRequest(phys_addr=addr, on_complete=issue))

    issue()
    mc_busy.engine.run(until=20_000)
    busy_times = [r.time for r in mc_busy.stats.rfm_records]
    assert busy_times == pytest.approx(idle_times)


def test_tb_rfm_mitigates_hottest_row():
    config = small_test_config(nbo=1_000_000).with_prac(nbo=1_000_000)
    mc, policy = _build(tb_window=50_000.0, config=config)
    hot = bank_address(mc, 0, 5)
    cold = bank_address(mc, 0, 6)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 30:
            return
        state["n"] += 1
        # Rows alternate so every access activates; row 5 is "hot" by
        # getting the extra odd access.
        mc.enqueue(MemRequest(phys_addr=hot if state["n"] % 2 else cold, on_complete=issue))

    issue()
    mc.engine.run(until=60_000)
    rfm = mc.stats.rfm_records[0]
    assert rfm.mitigated_rows.get(0) == 5
    assert mc.channel.bank(0).counter(5) == 0


def test_tref_skips_next_tb_rfm():
    config = small_test_config()
    policy = TpracPolicy(tb_window_trefi=1.0)
    mc = MemoryController(
        Engine(), config, policy=policy, enable_refresh=True, tref_per_trefi=1.0
    )
    mc.engine.run(until=10 * config.timing.tREFI + 100)
    # With one TREF per tREFI and the window at 1 tREFI, every TB-RFM
    # is skipped: zero channel-blocking RFMs.
    assert policy.tb_rfms_skipped >= 8
    assert mc.stats.rfm_count(RfmProvenance.TB) == 0


def test_tref_mitigates_from_queue():
    config = small_test_config(nbo=1_000_000).with_prac(nbo=1_000_000)
    policy = TpracPolicy(tb_window_trefi=4.0)
    mc = MemoryController(
        Engine(), config, policy=policy, enable_refresh=True, tref_per_trefi=1.0
    )
    addr_a = bank_address(mc, 0, 1)
    addr_b = bank_address(mc, 0, 2)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 10:
            return
        state["n"] += 1
        mc.enqueue(MemRequest(phys_addr=addr_a if state["n"] % 2 else addr_b, on_complete=issue))

    issue()
    mc.engine.run(until=2 * config.timing.tREFI)
    assert policy.mitigations_performed >= 1


def test_bandwidth_loss_property():
    mc, policy = _build(tb_window=7000.0)
    assert policy.bandwidth_loss == pytest.approx(350.0 / 7000.0)


def test_tprac_prevents_abo_under_hammering():
    """End-to-end security: TB-RFMs keep counters below N_BO."""
    nbo = 64
    config = small_test_config(nbo=nbo).with_prac(nbo=nbo, abo_act=0)
    # Window sized so at most ~nbo/2 activations fit between TB-RFMs.
    window = (nbo // 2) * 70.0
    mc, policy = _build(tb_window=window, config=config)
    a = bank_address(mc, 0, 10)
    b = bank_address(mc, 0, 11)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 600:
            return
        state["n"] += 1
        mc.enqueue(MemRequest(phys_addr=a if state["n"] % 2 else b, on_complete=issue))

    issue()
    mc.engine.run(until=100_000_000)
    assert mc.abo.alert_count == 0
    assert mc.stats.rfm_count(RfmProvenance.ABO) == 0
    assert mc.stats.rfm_count(RfmProvenance.TB) > 0
