"""Tests for the obfuscation policy and the per-bank RFM extension."""

import pytest

from repro.controller.controller import MemoryController
from repro.core.engine import Engine
from repro.dram.commands import RfmProvenance
from repro.dram.config import small_test_config
from repro.mitigations.obfuscation import ObfuscationPolicy
from repro.mitigations.rfmpb import PerBankRfmPolicy


def test_injection_probability_validated():
    with pytest.raises(ValueError):
        ObfuscationPolicy(inject_prob=1.5)


def test_random_rfms_injected_at_roughly_configured_rate():
    config = small_test_config()
    policy = ObfuscationPolicy(inject_prob=0.5, seed=3)
    mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    ticks = 400
    mc.engine.run(until=ticks * config.timing.tREFI + 100)
    rate = policy.random_rfms_injected / ticks
    assert 0.4 < rate < 0.6
    assert mc.stats.rfm_count(RfmProvenance.RANDOM) == policy.random_rfms_injected


def test_zero_probability_injects_nothing():
    config = small_test_config()
    policy = ObfuscationPolicy(inject_prob=0.0)
    mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    mc.engine.run(until=100 * config.timing.tREFI)
    assert policy.random_rfms_injected == 0


def test_injection_is_deterministic_per_seed():
    def count(seed):
        config = small_test_config()
        policy = ObfuscationPolicy(inject_prob=0.5, seed=seed)
        mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
        mc.engine.run(until=100 * config.timing.tREFI)
        return policy.random_rfms_injected

    assert count(7) == count(7)


class TestPerBankRfm:
    def test_requires_exactly_one_window_spec(self):
        with pytest.raises(ValueError):
            PerBankRfmPolicy()

    def test_rotates_over_banks(self):
        config = small_test_config()
        policy = PerBankRfmPolicy(tb_window=4000.0)
        mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
        mc.engine.run(until=8200.0)
        banks = [r.bank_id for r in mc.stats.rfm_records]
        # 4 banks, window/4 = 1000ns per firing: two full rotations.
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_blocks_only_target_bank(self):
        config = small_test_config()
        policy = PerBankRfmPolicy(tb_window=4000.0)
        mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
        mc.engine.run(until=1100.0)   # first firing hits bank 0
        assert mc.channel.bank(0).ready_at > 0
        assert mc.channel.blocked_until == 0.0

    def test_mitigates_hottest_row_in_target_bank(self):
        config = small_test_config(nbo=10**6).with_prac(nbo=10**6)
        policy = PerBankRfmPolicy(tb_window=4000.0)
        mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
        bank = mc.channel.bank(0)
        bank.activate(7, 0.0)
        bank.activate(7, 1000.0 - 200.0)
        mc.engine.run(until=1100.0)
        assert bank.counter(7) == 0
        assert policy.mitigations_performed == 1
