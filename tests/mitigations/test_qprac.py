"""Tests for the QPRAC-style base policy."""


from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.commands import RfmProvenance
from repro.dram.config import small_test_config
from repro.mitigations import make_policy
from repro.mitigations.qprac import QpracPolicy
from repro.mitigations.tprac import TpracPolicy
from repro.prac.mitigation_queue import PriorityMitigationQueue


def _drive(mc, rows, count, bank=0):
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= count:
            return
        row = rows[state["n"] % len(rows)]
        state["n"] += 1
        mc.enqueue(MemRequest(phys_addr=bank_address(mc, bank, row), on_complete=issue))

    issue()
    mc.engine.run(until=200_000_000)


def test_factory_includes_qprac():
    assert isinstance(make_policy("qprac"), QpracPolicy)


def test_proactive_servicing_on_refresh():
    config = small_test_config(nbo=100_000).with_prac(nbo=100_000)
    policy = QpracPolicy(queue_depth=4)
    mc = MemoryController(Engine(), config, policy=policy, enable_refresh=True)
    _drive(mc, rows=[1, 2, 3], count=30)
    mc.engine.run(until=3 * config.timing.tREFI)
    assert policy.proactive_mitigations >= 1
    # Serviced rows had their counters reset without any RFM.
    assert mc.stats.rfm_count() == 0


def test_proactive_servicing_reduces_alerts():
    nbo = 48
    config = small_test_config(nbo=nbo).with_prac(nbo=nbo, abo_act=0)

    def alerts(proactive: bool) -> int:
        policy = QpracPolicy(queue_depth=4, proactive=proactive)
        mc = MemoryController(Engine(), config, policy=policy, enable_refresh=True)
        _drive(mc, rows=[1, 2], count=400)
        return mc.abo.alert_count

    assert alerts(True) < alerts(False)


def test_priority_queues_installed_per_bank():
    config = small_test_config()
    policy = QpracPolicy(queue_depth=6)
    MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    assert len(policy.queues) == config.organization.total_banks
    assert all(isinstance(q, PriorityMitigationQueue) for q in policy.queues)
    assert policy.queues[0].capacity == 6


def test_tprac_composes_with_qprac_queue():
    """Section 4.1: TB-RFM is compatible with QPRAC-style queues."""
    config = small_test_config(nbo=64).with_prac(nbo=64, abo_act=0)
    policy = TpracPolicy(
        tb_window=1500.0,
        queue_factory=lambda: PriorityMitigationQueue(capacity=4),
    )
    mc = MemoryController(Engine(), config, policy=policy, enable_refresh=False)
    _drive(mc, rows=[1, 2], count=400)
    assert mc.abo.alert_count == 0
    assert mc.stats.rfm_count(RfmProvenance.TB) > 0
