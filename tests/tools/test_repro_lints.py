"""Tests for the custom AST lint suite (tools/repro_lints).

Each rule is exercised against synthetic snippets — one that must
trigger and near-miss variants that must stay silent — plus the
meta-properties the suite guarantees: scope filtering, per-line
waivers, deterministic ordering, and (the point of the exercise) a
clean verdict on the real tree.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from tools.repro_lints import RULES, lint_paths, lint_source
from tools.repro_lints.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]

HOT_PATH = "src/repro/dram/somefile.py"
WRITER_PATH = "src/repro/campaigns/trials.py"


def rules_of(violations):
    return [v.rule for v in violations]


# ----------------------------------------------------------------------
# unseeded-random
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_module_level_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["unseeded-random"]

    def test_unseeded_random_instance_flagged(self):
        src = "import random\nrng = random.Random()\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["unseeded-random"]

    def test_from_import_flagged(self):
        src = "from random import shuffle\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["unseeded-random"]

    def test_seeded_instance_allowed(self):
        src = "import random\nrng = random.Random(1234)\n"
        assert lint_source(src, HOT_PATH) == []

    def test_method_on_instance_allowed(self):
        src = "def f(rng):\n    return rng.random()\n"
        assert lint_source(src, HOT_PATH) == []


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
class TestWallClock:
    @pytest.mark.parametrize(
        "call", ["time.time()", "time.perf_counter()", "time.monotonic_ns()"]
    )
    def test_clock_reads_flagged(self, call):
        src = f"import time\nt = {call}\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["wall-clock"]

    def test_from_time_import_flagged(self):
        src = "from time import perf_counter\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["wall-clock"]

    def test_time_sleep_allowed(self):
        src = "import time\ntime.sleep(0.1)\n"
        assert lint_source(src, HOT_PATH) == []


# ----------------------------------------------------------------------
# iteration-order
# ----------------------------------------------------------------------
class TestIterationOrder:
    def test_for_over_set_call_flagged(self):
        src = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["iteration-order"]

    def test_comprehension_over_set_literal_flagged(self):
        src = "ys = [x for x in {1, 2, 3}]\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["iteration-order"]

    def test_set_algebra_flagged(self):
        src = "def f(a, b):\n    for x in set(a) - set(b):\n        pass\n"
        assert rules_of(lint_source(src, HOT_PATH)) == ["iteration-order"]

    def test_sorted_set_allowed(self):
        src = "def f(xs):\n    for x in sorted(set(xs)):\n        pass\n"
        assert lint_source(src, HOT_PATH) == []

    def test_list_iteration_allowed(self):
        src = "def f(xs):\n    for x in list(xs):\n        pass\n"
        assert lint_source(src, HOT_PATH) == []


# ----------------------------------------------------------------------
# registry-bypass
# ----------------------------------------------------------------------
class TestRegistryBypass:
    def test_direct_construction_flagged(self):
        src = "policy = TpracPolicy(tb_window=100.0)\n"
        found = lint_source(src, "src/repro/attacks/example.py")
        assert rules_of(found) == ["registry-bypass"]
        assert 'make_policy("tprac")' in found[0].message

    def test_defining_module_exempt(self):
        src = "policy = TpracPolicy(tb_window=100.0)\n"
        assert lint_source(src, "src/repro/mitigations/tprac.py") == []

    def test_registry_assembly_exempt(self):
        src = "factory = AboOnlyPolicy\npolicy = AboOnlyPolicy()\n"
        assert lint_source(src, "src/repro/mitigations/__init__.py") == []

    def test_tests_out_of_scope(self):
        src = "policy = TpracPolicy(tb_window=100.0)\n"
        assert lint_source(src, "tests/mitigations/test_tprac.py") == []

    def test_subclassing_allowed(self):
        src = "class Custom(TpracPolicy):\n    pass\n"
        assert lint_source(src, "src/repro/attacks/example.py") == []


# ----------------------------------------------------------------------
# slots-required
# ----------------------------------------------------------------------
class TestSlotsRequired:
    def test_missing_slots_flagged(self):
        src = "class Event:\n    def __init__(self):\n        self.time = 0.0\n"
        found = lint_source(src, "src/repro/core/engine.py")
        assert rules_of(found) == ["slots-required"]

    def test_declared_slots_clean(self):
        src = 'class Event:\n    __slots__ = ("time",)\n'
        assert lint_source(src, "src/repro/core/engine.py") == []

    def test_other_classes_in_module_free(self):
        src = "class Engine:\n    pass\n"
        assert lint_source(src, "src/repro/core/engine.py") == []


# ----------------------------------------------------------------------
# float-format-drift
# ----------------------------------------------------------------------
class TestFloatFormatDrift:
    def test_round_flagged(self):
        src = "payload = {'x': round(1.23456, 3)}\n"
        assert rules_of(lint_source(src, WRITER_PATH)) == ["float-format-drift"]

    def test_float_fstring_spec_flagged(self):
        src = "def f(x):\n    return f'{x:.3f}'\n"
        assert rules_of(lint_source(src, WRITER_PATH)) == ["float-format-drift"]

    def test_plain_fstring_allowed(self):
        src = "def f(name):\n    return f'run {name} done'\n"
        assert lint_source(src, WRITER_PATH) == []

    def test_int_format_spec_allowed(self):
        src = "def f(n):\n    return f'{n:04d}'\n"
        assert lint_source(src, WRITER_PATH) == []

    def test_display_modules_out_of_scope(self):
        src = "def f(x):\n    return f'{x:.3f}'\n"
        assert lint_source(src, "src/repro/bench/report.py") == []


# ----------------------------------------------------------------------
# no-print
# ----------------------------------------------------------------------
class TestNoPrint:
    def test_print_in_library_flagged(self):
        src = "def f(x):\n    print(x)\n"
        found = lint_source(src, "src/repro/experiments/runner.py")
        assert rules_of(found) == ["no-print"]
        assert "repro.obs.log" in found[0].message

    def test_cli_exempt(self):
        src = "print('table')\n"
        assert lint_source(src, "src/repro/cli.py") == []

    def test_obs_package_exempt(self):
        src = "print('progress')\n"
        assert lint_source(src, "src/repro/obs/progress.py") == []

    def test_docstring_mention_allowed(self):
        src = '"""Never print(...) here."""\nx = 1\n'
        assert lint_source(src, "src/repro/campaigns/trials.py") == []

    def test_waiver_suppresses(self):
        src = "print('one-off')  # repro-lint: allow(no-print)\n"
        assert lint_source(src, "src/repro/experiments/runner.py") == []

    def test_shadowed_method_allowed(self):
        src = "def f(doc):\n    doc.print(2)\n"
        assert lint_source(src, "src/repro/experiments/runner.py") == []

    def test_tests_out_of_scope(self):
        src = "print('debugging')\n"
        assert lint_source(src, "tests/obs/test_trace.py") == []


# ----------------------------------------------------------------------
# suite mechanics
# ----------------------------------------------------------------------
class TestSuiteMechanics:
    def test_waiver_suppresses_only_named_rule(self):
        src = "t = round(1.5, 1)  # repro-lint: allow(float-format-drift)\n"
        assert lint_source(src, WRITER_PATH) == []
        wrong = "t = round(1.5, 1)  # repro-lint: allow(wall-clock)\n"
        assert rules_of(lint_source(wrong, WRITER_PATH)) == ["float-format-drift"]

    def test_rule_names_unique_and_nonempty(self):
        names = [cls.name for cls in RULES]
        assert len(names) == len(set(names))
        assert all(names)
        assert all(cls.rationale for cls in RULES)

    def test_violations_sorted_and_formatted(self):
        src = "import time\na = time.time()\nb = time.time()\n"
        tmp = REPO_ROOT / "src/repro/dram"
        found = lint_source(src, HOT_PATH)
        assert [v.line for v in found] == [2, 3]
        assert str(found[0]).startswith(f"{HOT_PATH}:2:")

    def test_real_tree_is_clean(self):
        violations = lint_paths(
            [str(REPO_ROOT / "src" / "repro")], root=str(REPO_ROOT)
        )
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "dram" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        # main() resolves scopes relative to cwd; drive the module as a
        # subprocess from tmp_path so path scoping matches the layout.
        env_root = str(REPO_ROOT)
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lints", "src/repro"],
            cwd=tmp_path,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": env_root, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "[wall-clock]" in proc.stdout

    def test_explain_lists_every_rule(self, capsys):
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for cls in RULES:
            assert cls.name in out
