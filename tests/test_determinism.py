"""Determinism audit (campaign prerequisite).

Campaign trials fan out over worker processes, so every stochastic
component must derive all randomness from an explicit seed — never
from module-level RNG state or from salted ``hash()`` values that
differ per interpreter.  Two layers of regression net:

* source audit — no module-level RNG seeding / global numpy RNG /
  ``hash()``-derived seeds anywhere under ``src/repro``;
* behavioural — identical traces across different ``PYTHONHASHSEED``
  interpreters, and bit-identical same-seed trials for both a cheap
  and a full-simulation trial kind.
"""

import hashlib
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaigns.runners import run_trial
from repro.campaigns.scenario import Scenario
from repro.workloads.synthetic import generate_trace

pytestmark = pytest.mark.smoke

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Patterns that indicate process-dependent randomness.
_FORBIDDEN = [
    re.compile(r"\brandom\.seed\("),          # module-level stdlib RNG
    re.compile(r"\bnp\.random\.\w+\("),       # global numpy RNG state
    re.compile(r"\bnumpy\.random\.\w+\("),
    re.compile(r"Random\([^)]*\bhash\("),     # salted str hash as a seed
]


def test_source_audit_no_module_level_or_salted_rng():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for pattern in _FORBIDDEN:
                if pattern.search(line):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, (
        "process-dependent randomness found (seed explicitly instead):\n"
        + "\n".join(offenders)
    )


def _trace_digest_subprocess(hashseed: str) -> str:
    """Checksum a synthetic trace in a fresh interpreter."""
    code = (
        "import hashlib\n"
        "from repro.workloads.synthetic import generate_trace\n"
        "records = generate_trace('433.milc', 500, seed=3)\n"
        "blob = ','.join(f'{r.gap_insts}:{r.phys_addr}:{r.is_write}'"
        " for r in records)\n"
        "print(hashlib.sha256(blob.encode()).hexdigest())\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    env["PYTHONPATH"] = str(SRC_ROOT.parent) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        env=env, capture_output=True, text=True, check=True,
    )
    return out.stdout.strip()


def test_traces_identical_across_hash_seeds():
    # hash('433.milc') differs between these two interpreters; the
    # trace must not (regression for the crc32 seed derivation).
    assert _trace_digest_subprocess("0") == _trace_digest_subprocess("1")


def test_traces_identical_in_process_for_same_seed():
    first = generate_trace("470.lbm", 300, seed=11)
    second = generate_trace("470.lbm", 300, seed=11)
    assert first == second
    assert first != generate_trace("470.lbm", 300, seed=12)


def _digest(metrics: dict) -> str:
    blob = ",".join(f"{k}={metrics[k]!r}" for k in sorted(metrics))
    return hashlib.sha256(blob.encode()).hexdigest()


def test_same_seed_perf_trials_are_bit_identical():
    scenario = Scenario(
        attack="perf", mitigation="tprac", workload="453.povray",
        nbo=1024, params={"requests_per_core": 300, "cores": 2},
    )
    assert _digest(run_trial(scenario, 5)) == _digest(run_trial(scenario, 5))


def test_same_seed_covert_trials_are_bit_identical():
    scenario = Scenario(
        attack="covert_activity", mitigation="abo_only",
        nbo=64, params={"symbols": 4},
    )
    assert _digest(run_trial(scenario, 9)) == _digest(run_trial(scenario, 9))


# ----------------------------------------------------------------------
# Kernel determinism: the fast-path event loop must fire the same
# events in the same order on every same-seed run, and the experiment
# harnesses built on it must reproduce their outputs exactly.
# ----------------------------------------------------------------------
def _traced_system_run(cores=2, requests=250):
    """Run a small perf system recording (time, label) per fired event."""
    from repro.experiments.common import DesignPoint, build_system, homogeneous_traces

    traces = homogeneous_traces(
        "433.milc", cores=cores, num_accesses=requests, seed=7
    )
    system = build_system(DesignPoint(design="tprac", nrh=1024), traces)
    engine = system.engine
    original_schedule = engine.schedule
    trace = []

    def tracing_schedule(time, callback, priority=0, label=""):
        def wrapped():
            trace.append((engine.now, label))
            callback()

        return original_schedule(time, wrapped, priority, label)

    engine.schedule = tracing_schedule
    result = system.run()
    return trace, result


@pytest.mark.slow
def test_same_seed_runs_fire_identical_event_sequences():
    trace_a, result_a = _traced_system_run()
    trace_b, result_b = _traced_system_run()
    assert trace_a == trace_b
    assert len(trace_a) > 1000
    assert result_a.ipcs == result_b.ipcs
    assert result_a.elapsed_ns == result_b.elapsed_ns


@pytest.mark.slow
def test_fig10_quick_outputs_are_bit_identical_across_runs():
    from repro.experiments import fig10_performance

    kwargs = dict(workloads=("433.milc",), requests_per_core=300)
    first = fig10_performance.run(**kwargs)
    second = fig10_performance.run(**kwargs)
    assert first.matrix == second.matrix


@pytest.mark.slow
def test_fig3_quick_outputs_are_bit_identical_across_runs():
    from repro.experiments import fig3_latency

    first = fig3_latency.run(nbo=256)
    second = fig3_latency.run(nbo=256)
    assert first.format_table() == second.format_table()
    for label, timeline in first.timelines.items():
        other = second.timelines[label]
        assert timeline.times == other.times
        assert timeline.latencies == other.latencies


def test_campaign_smoke_scenario_hashes_are_pinned():
    # Content-hash IDs identify persisted campaign results; they must
    # not move when the kernel internals change.  Golden values were
    # captured on the pre-fast-path kernel.
    from repro.campaigns import builtin_scenarios

    assert [s.scenario_id for s in builtin_scenarios("smoke")] == [
        "b96dde42fa71",
        "9b2e4950526c",
        "2e4dd60e9ecd",
        "69a7b36da3d6",
        "bb8aca9c1b83",
        "c04331539422",
        "cf86827ccb59",
        "da6534cb71de",
        "f6873422c3e0",
        "1963edc70254",
        "5ce2b861a76a",
        "a0c48b3d162d",
    ]
