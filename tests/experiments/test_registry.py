"""Tests for the declarative artifact registry."""

import importlib
import inspect

import pytest

from repro.experiments import registry

pytestmark = pytest.mark.smoke


def test_every_run_module_is_registered():
    # Drift guard: any experiment module exposing run() must export an
    # ARTIFACT spec (the old hand-rolled dict covered only 6 of 14).
    registered_modules = {spec.module for spec in registry.discover().values()}
    for dotted in registry.iter_experiment_modules():
        module = importlib.import_module(dotted)
        if callable(getattr(module, "run", None)):
            assert dotted in registered_modules, f"{dotted} has run() but no ARTIFACT"


def test_all_fourteen_paper_artifacts_registered():
    specs = registry.discover()
    assert len(registry.PAPER_ARTIFACTS) == 14
    missing = set(registry.PAPER_ARTIFACTS) - set(specs)
    assert not missing


def test_specs_are_well_formed():
    for name, spec in registry.discover().items():
        assert spec.name == name
        assert spec.artifact and spec.title
        assert spec.module.startswith("repro.experiments.")
        run = spec.load_runner()
        signature = inspect.signature(run)
        for scale in registry.SCALES:
            signature.bind_partial(**spec.kwargs(scale))  # kwargs must fit run()


def test_kwargs_returns_a_copy():
    spec = registry.get("fig3")
    kwargs = spec.kwargs("quick")
    kwargs["nbo"] = -1
    assert spec.kwargs("quick") != kwargs or spec.quick.get("nbo") != -1


def test_unknown_scale_and_name_rejected():
    with pytest.raises(ValueError):
        registry.get("fig3").kwargs("huge")
    with pytest.raises(KeyError):
        registry.get("fig99")
