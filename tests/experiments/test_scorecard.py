"""Tests for the scorecard machinery (fast checks only)."""

from repro.experiments.scorecard import Scorecard, run


def test_scorecard_bookkeeping():
    card = Scorecard()
    card.add("a", "1", "1", True)
    card.add("b", "2", "3", False)
    assert not card.all_passed
    assert card.pass_count == 1
    table = card.format_table()
    assert "PASS" in table and "FAIL" in table
    assert "1/2 claims reproduced" in table


def test_quick_scorecard_without_perf():
    card = run(include_perf=False)
    assert card.all_passed, card.format_table()
    claims = [check.claim for check in card.checks]
    assert any("Fig7" in claim for claim in claims)
    assert any("Feinting" in claim for claim in claims)
    assert not any("slowdown" in claim for claim in claims)
