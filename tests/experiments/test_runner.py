"""Tests for the experiment runner / JSON persistence."""

import json

import pytest

from repro.experiments.runner import _to_jsonable, load_result, run_suite


def test_unknown_experiment_rejected(tmp_path):
    with pytest.raises(KeyError):
        run_suite(tmp_path, experiments=["fig99"])


def test_runs_selected_experiments_and_writes_json(tmp_path):
    written = run_suite(tmp_path, experiments=["fig7", "fig8"])
    assert set(written) == {"fig7", "fig8"}
    for path in written.values():
        payload = load_result(path)
        assert "result" in payload and "table" in payload
        assert payload["elapsed_seconds"] >= 0
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert [entry["experiment"] for entry in summary] == ["fig7", "fig8"]


def test_fig7_payload_contains_expected_values(tmp_path):
    written = run_suite(tmp_path, experiments=["fig7"])
    payload = load_result(written["fig7"])
    assert "572" in payload["table"]
    sweeps = payload["result"]["sweep"]
    tmaxes = [entry["tmax"] for entry in sweeps["with_reset"]]
    assert 572 in tmaxes


def test_custom_runner_overrides(tmp_path):
    class FakeResult:
        def format_table(self):
            return "fake"

    written = run_suite(
        tmp_path,
        experiments=["custom"],
        runners={"custom": FakeResult},
    )
    payload = load_result(written["custom"])
    assert payload["table"] == "fake"


def test_to_jsonable_handles_nested_structures():
    from dataclasses import dataclass

    @dataclass
    class Point:
        x: int
        y: float

    converted = _to_jsonable({(1, 2): [Point(1, 2.5), {"k": (3,)}]})
    assert converted == {"(1, 2)": [{"x": 1, "y": 2.5}, {"k": [3]}]}


def test_to_jsonable_falls_back_to_repr():
    class Weird:
        def __repr__(self):
            return "<weird>"

    assert _to_jsonable(Weird()) == "<weird>"
