"""Tests for the experiment runner / JSON persistence."""

import json

import pytest

from repro.experiments.runner import (
    _to_jsonable,
    load_result,
    load_summary,
    run_suite,
)

pytestmark = pytest.mark.smoke


def test_unknown_experiment_rejected(tmp_path):
    with pytest.raises(KeyError):
        run_suite(tmp_path, experiments=["fig99"])


def test_runs_selected_experiments_and_writes_json(tmp_path):
    written = run_suite(tmp_path, experiments=["fig7", "fig8"])
    assert set(written) == {"fig7", "fig8"}
    for path in written.values():
        payload = load_result(path)
        assert "result" in payload and "table" in payload
        assert payload["elapsed_seconds"] >= 0
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert [entry["experiment"] for entry in summary] == ["fig7", "fig8"]


def test_fig7_payload_contains_expected_values(tmp_path):
    written = run_suite(tmp_path, experiments=["fig7"])
    payload = load_result(written["fig7"])
    assert "572" in payload["table"]
    sweeps = payload["result"]["sweep"]
    tmaxes = [entry["tmax"] for entry in sweeps["with_reset"]]
    assert 572 in tmaxes


def test_custom_runner_overrides(tmp_path):
    class FakeResult:
        def format_table(self):
            return "fake"

    written = run_suite(
        tmp_path,
        experiments=["custom"],
        runners={"custom": FakeResult},
    )
    payload = load_result(written["custom"])
    assert payload["table"] == "fake"


def test_to_jsonable_handles_nested_structures():
    from dataclasses import dataclass

    @dataclass
    class Point:
        x: int
        y: float

    converted = _to_jsonable({(1, 2): [Point(1, 2.5), {"k": (3,)}]})
    assert converted == {"(1, 2)": [{"x": 1, "y": 2.5}, {"k": [3]}]}


def test_to_jsonable_falls_back_to_repr():
    class Weird:
        def __repr__(self):
            return "<weird>"

    assert _to_jsonable(Weird()) == "<weird>"


class _FakeResult:
    def format_table(self):
        return "fake"


def _boom():
    raise RuntimeError("deliberate harness crash")


def test_failing_runner_is_isolated(tmp_path):
    # A crashing harness must not abort the suite: the others complete
    # and the failure lands as a structured error entry in summary.json.
    written = run_suite(
        tmp_path,
        experiments=["boom", "ok"],
        runners={"boom": _boom, "ok": _FakeResult},
    )
    assert set(written) == {"ok"}
    summary = {e["experiment"]: e for e in load_summary(tmp_path)}
    assert summary["ok"]["status"] == "ok"
    assert summary["boom"]["status"] == "error"
    assert summary["boom"]["error"]["type"] == "RuntimeError"
    assert "deliberate harness crash" in summary["boom"]["error"]["message"]
    assert "_boom" in summary["boom"]["error"]["traceback"]
    assert not (tmp_path / "boom.json").exists()


def test_summary_is_flushed_incrementally(tmp_path):
    # Even when the *last* experiment fails, the earlier entry is
    # already on disk — interrupted runs leave a consistent index.
    run_suite(
        tmp_path,
        experiments=["ok", "boom"],
        runners={"ok": _FakeResult, "boom": _boom},
    )
    summary = load_summary(tmp_path)
    assert [e["experiment"] for e in summary] == ["ok", "boom"]


def test_subset_run_preserves_existing_summary_entries(tmp_path):
    # A later `--only`-style run must merge into summary.json, not
    # erase the record of previously completed artifacts.
    run_suite(tmp_path, experiments=["fig7", "fig8"])
    run_suite(tmp_path, experiments=["fig8"], force=True)
    summary = [e["experiment"] for e in load_summary(tmp_path)]
    assert summary == ["fig7", "fig8"]


def test_failed_rerun_invalidates_stale_cache(tmp_path):
    # After a recorded failure, a later cached run must not resurrect
    # the stale success without actually re-running the experiment.
    run_suite(tmp_path, experiments=["fig8"])
    run_suite(tmp_path, experiments=["fig8"], runners={"fig8": _boom})
    assert "cache_key" not in load_result(tmp_path / "fig8.json")
    run_suite(tmp_path, experiments=["fig8"])
    summary = {e["experiment"]: e for e in load_summary(tmp_path)}
    assert summary["fig8"]["status"] == "ok"  # re-ran, not "cached"


def test_cache_hit_skips_rerun(tmp_path):
    first = run_suite(tmp_path, experiments=["fig8"])
    stamp = first["fig8"].stat().st_mtime_ns
    second = run_suite(tmp_path, experiments=["fig8"])
    assert second["fig8"] == first["fig8"]
    assert second["fig8"].stat().st_mtime_ns == stamp  # not rewritten
    summary = {e["experiment"]: e for e in load_summary(tmp_path)}
    assert summary["fig8"]["status"] == "cached"


def test_force_reruns_and_refreshes_cache(tmp_path):
    first = run_suite(tmp_path, experiments=["fig8"])
    stamp = first["fig8"].stat().st_mtime_ns
    run_suite(tmp_path, experiments=["fig8"], force=True)
    assert first["fig8"].stat().st_mtime_ns != stamp  # re-ran
    assert "cache_key" in load_result(first["fig8"])
    run_suite(tmp_path, experiments=["fig8"])
    summary = {e["experiment"]: e for e in load_summary(tmp_path)}
    assert summary["fig8"]["status"] == "cached"  # force refreshed the cache


def test_no_cache_bypasses_read_and_write(tmp_path):
    run_suite(tmp_path, experiments=["fig8"], use_cache=False)
    assert "cache_key" not in load_result(tmp_path / "fig8.json")
    run_suite(tmp_path, experiments=["fig8"])  # nothing cached to hit
    summary = {e["experiment"]: e for e in load_summary(tmp_path)}
    assert summary["fig8"]["status"] == "ok"


def test_cache_misses_when_version_or_kwargs_change(tmp_path):
    from repro.experiments import runner as runner_mod

    run_suite(tmp_path, experiments=["fig8"])
    payload = load_result(tmp_path / "fig8.json")
    spec_key = payload["cache_key"]
    assert spec_key == runner_mod._cache_key(
        "fig8", "repro.experiments.fig8_walkthrough", {}
    )
    assert spec_key != runner_mod._cache_key(
        "fig8", "repro.experiments.fig8_walkthrough", {"nbo": 200}
    )


def test_parallel_jobs_run_all_experiments(tmp_path):
    # Exercise the real process-pool path (jobs>1, >1 registry specs).
    written = run_suite(tmp_path, experiments=["fig7", "fig8"], jobs=2)
    assert set(written) == {"fig7", "fig8"}
    summary = load_summary(tmp_path)
    # Requested order is preserved regardless of completion order.
    assert [e["experiment"] for e in summary] == ["fig7", "fig8"]
    assert all(e["status"] == "ok" for e in summary)
    payload = load_result(written["fig7"])
    assert "572" in payload["table"]


def test_scale_feeds_the_cache_key():
    from repro.experiments import registry
    from repro.experiments import runner as runner_mod

    spec = registry.get("table2")  # quick and full kwargs differ
    keys = {
        runner_mod._cache_key(spec.name, spec.module, spec.kwargs(scale))
        for scale in registry.SCALES
    }
    assert len(keys) == 2


# ----------------------------------------------------------------------
# Resilience: corrupt caches, retries, quarantine, interrupts
# ----------------------------------------------------------------------
def test_corrupt_cache_file_is_quarantined_and_rerun(tmp_path):
    run_suite(tmp_path, experiments=["fig8"])
    (tmp_path / "fig8.json").write_text("{not json at all")
    written = run_suite(tmp_path, experiments=["fig8"])
    assert (tmp_path / "fig8.json.corrupt").exists()
    payload = load_result(written["fig8"])
    assert payload["status"] == "ok" and "cache_key" in payload
    summary = {e["experiment"]: e for e in load_summary(tmp_path)}
    assert summary["fig8"]["status"] == "ok"  # re-ran, not "cached"


def test_transient_failure_is_retried_via_fault_plan(tmp_path, monkeypatch):
    import json as json_mod

    from repro import faults
    from repro.core.executor import FAULT_PLAN_ENV

    monkeypatch.setenv(
        FAULT_PLAN_ENV,
        json_mod.dumps(
            {"rules": [{"action": "raise", "match": "fig8", "attempts": [0]}]}
        ),
    )
    faults.clear_plan_cache()
    try:
        written = run_suite(tmp_path, experiments=["fig8"], use_cache=False)
    finally:
        faults.clear_plan_cache()
    payload = load_result(written["fig8"])
    assert payload["status"] == "ok"
    assert payload["retries"] == 1
    assert payload["attempt_errors"][0]["type"] == "InjectedFault"


def test_exhausted_retries_quarantine_the_experiment(tmp_path, monkeypatch):
    import json as json_mod

    from repro import faults
    from repro.core.executor import FAULT_PLAN_ENV

    monkeypatch.setenv(
        FAULT_PLAN_ENV,
        json_mod.dumps(
            {
                "rules": [
                    {"action": "raise", "match": "fig8", "attempts": [0, 1]}
                ]
            }
        ),
    )
    faults.clear_plan_cache()
    try:
        written = run_suite(
            tmp_path, experiments=["fig8"], use_cache=False, retries=1
        )
    finally:
        faults.clear_plan_cache()
    assert "fig8" not in written
    summary = {e["experiment"]: e for e in load_summary(tmp_path)}
    assert summary["fig8"]["status"] == "quarantined"
    assert summary["fig8"]["attempts"] == 2
    assert summary["fig8"]["error"]["type"] == "InjectedFault"


def test_interrupted_suite_reraises_with_consistent_index(tmp_path, monkeypatch):
    from repro.experiments import runner as runner_mod

    def interrupted(name, module, kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_mod, "_execute_spec", interrupted)
    with pytest.raises(KeyboardInterrupt):
        run_suite(tmp_path, experiments=["fig8"], use_cache=False)
    # The index is present and parseable (nothing completed).
    assert json.loads((tmp_path / "summary.json").read_text()) == []
