"""Tests for the walkthrough and obfuscation experiments."""

from repro.experiments import fig8_walkthrough, obfuscation_defense


def test_fig8_is_secure_and_tracks_decoys():
    result = fig8_walkthrough.run(nbo=100, acts_per_window=40, epochs=4)
    assert result.alerts == 0
    assert result.target_peak < 100
    assert len(result.snapshots) == 4
    # Epoch 1 spreads uniformly over the four rows.
    first = result.snapshots[0].counters
    assert first == {"A": 10, "B": 10, "C": 10, "T": 10}
    # The target monotonically accumulates until its own mitigation.
    target = [s.counters["T"] for s in result.snapshots]
    assert target[1] > target[0]
    assert "secure=True" in result.format_table()


def test_fig8_larger_window_still_secure():
    result = fig8_walkthrough.run(nbo=100, acts_per_window=60, epochs=4)
    assert result.secure


def test_obfuscation_outcomes_cover_three_defenses():
    result = obfuscation_defense.run(bits=6)
    assert [o.defense for o in result.outcomes] == ["none", "obfuscation", "tprac"]
    assert result.outcome("none").error_rate == 0.0
    assert result.outcome("obfuscation").rfms_observed > result.outcome(
        "none"
    ).rfms_observed
    assert result.format_table()
