"""Small-scale tests for the remaining performance harnesses."""


from repro.experiments import fig11_prac_levels, fig12_tref, fig13_nrh, fig14_reset

TINY = dict(workloads=["433.milc", "453.povray"], requests_per_core=800)


def test_fig11_flat_across_levels():
    result = fig11_prac_levels.run(prac_levels=(1, 4), **TINY)
    for design in ("abo_only", "tprac"):
        one = result.geomean(1, design)
        four = result.geomean(4, design)
        assert abs(one - four) < 0.02
    assert "PRAC-1" in result.format_table()


def test_fig12_tref_monotone():
    result = fig12_tref.run(tref_rates=(0.0, 1.0), **TINY)
    assert result.geomean(1.0) >= result.geomean(0.0) - 0.003
    assert result.slowdown_pct(1.0) <= result.slowdown_pct(0.0) + 0.3
    assert "TREF" in result.format_table()


def test_fig13_threshold_monotone():
    result = fig13_nrh.run(nrh_values=(256, 2048), **TINY)
    assert result.slowdown_pct(256, "tprac") > result.slowdown_pct(2048, "tprac")
    assert result.slowdown_pct(2048, "abo_only") < 1.0
    assert result.format_table()


def test_fig14_reset_allows_longer_window():
    result = fig14_reset.run(nrh_values=(512,), **TINY)
    assert result.windows[(512, True)] >= result.windows[(512, False)]
    assert result.format_table()


def test_fig10_cache_none_is_byte_identical():
    # Spelling the new axes at their defaults must reproduce the
    # pre-hierarchy fig10 output byte for byte.
    from repro.config import SystemConfig
    from repro.experiments import fig10_performance

    small = dict(workloads=["433.milc"], requests_per_core=400)
    base = fig10_performance.run(**small)
    spelled = fig10_performance.run(
        system=SystemConfig(cache="none", interconnect="none"), **small
    )
    assert spelled.format_table() == base.format_table()
    for design, rows in base.matrix.items():
        for row, other in zip(rows, spelled.matrix[design]):
            assert other.normalized == row.normalized


def test_fig10_runs_behind_the_hierarchy():
    from repro.config import SystemConfig
    from repro.experiments import fig10_performance

    result = fig10_performance.run(
        workloads=["433.milc"],
        requests_per_core=400,
        system=SystemConfig(cache="l1l2", interconnect="fixed"),
    )
    for rows in result.matrix.values():
        for row in rows:
            assert row.normalized > 0.0


def test_design_point_labels():
    from repro.experiments.common import DesignPoint

    assert DesignPoint(design="tprac", nrh=512).label() == "tprac@512"
    labelled = DesignPoint(design="tprac", nrh=512, tref_per_trefi=0.5).label()
    assert "tref0.5" in labelled
