"""Integration tests: every experiment harness runs (scaled down) and
reproduces the paper's qualitative shape."""

import pytest

from repro.experiments import (
    fig3_latency,
    fig4_side_channel,
    fig5_key_sweep,
    fig7_security,
    fig9_defense,
    fig10_performance,
    table2_covert,
    table5_energy,
)
from repro.experiments.common import DesignPoint, build_system, default_workloads
from repro.workloads.synthetic import homogeneous_traces


SMALL = dict(requests_per_core=600)
WORKLOADS = ["433.milc", "401.bzip2", "453.povray"]


def test_fig3_spike_magnitude_scales_with_prac_level():
    result = fig3_latency.run(nbo=128, hammer_rounds=2, duration_ns=120_000)
    one = result.timelines["1 RFM/ABO"].mean_spike_latency()
    four = result.timelines["4 RFM/ABO"].mean_spike_latency()
    assert result.timelines["1 RFM/ABO"].abo_count >= 1
    assert four > 2 * one > 0
    assert result.timelines["No ABO"].abo_count == 0
    assert result.format_table()


def test_table2_count_channel_beats_activity_channel():
    result = table2_covert.run(
        nbo_values=(256,), activity_bits=4, count_symbols=3
    )
    activity = result.row("Activity-Based", 256)
    count = result.row("Activation-Count-Based", 256)
    assert activity.error_rate == 0.0
    assert count.error_rate == 0.0
    assert count.bitrate_kbps > activity.bitrate_kbps
    assert count.period_us > activity.period_us
    assert result.format_table()


def test_fig4_recovers_nibble_and_counts():
    result = fig4_side_channel.run(key_byte=0x50, encryptions=150)
    attack = result.attack
    assert attack.success
    assert attack.recovered_nibble == 0x5
    assert attack.rfm_times
    assert "recovered key nibble" in result.format_table()


def test_fig5_sweep_tracks_key():
    result = fig5_key_sweep.run(key_values=[0, 128, 240], encryptions=150)
    assert result.recovery_rate == 1.0
    assert result.format_table()


def test_fig7_matches_paper():
    result = fig7_security.run()
    assert result.tmax(1.0, with_reset=True) == 572
    assert result.tmax(1.0, with_reset=False) == 736
    assert result.format_table()


def test_fig9_defense_stops_leak():
    result = fig9_defense.run(key_values=[0, 160], encryptions=120)
    assert result.leak_rate_undefended == 1.0
    assert result.leak_rate_defended < 1.0
    assert result.format_table()


def test_fig10_ordering_tprac_pays_most():
    result = fig10_performance.run(workloads=WORKLOADS, **SMALL)
    tprac = result.geomean("tprac@1024")
    abo = result.geomean("abo_only@1024")
    acb = result.geomean("abo_acb@1024")
    assert tprac < acb <= abo * 1.001
    assert 0.90 < tprac < 1.0
    assert abo > 0.995
    assert result.format_table()


def test_table5_energy_grows_as_threshold_drops():
    result = table5_energy.run(
        nrh_values=(256, 1024), workloads=["433.milc"], requests_per_core=2500
    )
    assert result.by_nrh[256].total_pct > result.by_nrh[1024].total_pct
    assert result.by_nrh[1024].total_pct > 0
    assert result.format_table()


def test_build_system_rejects_unknown_design():
    traces = homogeneous_traces("453.povray", cores=1, num_accesses=10)
    with pytest.raises(ValueError):
        build_system(DesignPoint(design="magic", nrh=1024), traces)


def test_default_workloads_category_balanced():
    names = default_workloads()
    assert len(names) >= 10
