"""Unit tests for the interconnect models and the front shim."""

import pytest

from repro.core.engine import Engine
from repro.controller.request import MemRequest
from repro.cpu.interconnect import (
    INTERCONNECTS,
    CrossbarInterconnect,
    FixedLatencyInterconnect,
    InterconnectFront,
    make_interconnect,
)


# ----------------------------------------------------------------------
# Fixed-latency link
# ----------------------------------------------------------------------
def test_fixed_latency_is_constant_and_uncontended():
    link = FixedLatencyInterconnect(latency_ns=3.0)
    assert link.grant(0, 10.0) == 13.0
    assert link.grant(0, 10.0) == 13.0  # same instant: no queuing
    assert link.transfers == 2
    assert link.queued == 0
    stats = link.stats(elapsed_ns=100.0)
    assert stats["kind"] == "fixed"
    assert stats["occupancy"] == 0.0


# ----------------------------------------------------------------------
# Crossbar
# ----------------------------------------------------------------------
def test_crossbar_fifo_ordering_under_contention():
    bar = CrossbarInterconnect(ports=2, latency_ns=4.0, occupancy_ns=1.0)
    addr = 0  # port 0
    same_port = addr + 2 * 64 * bar.ports  # still port 0
    assert bar.port_of(addr) == bar.port_of(same_port) == 0
    # Three transfers arrive at the same instant on one port: delivery
    # times are strictly increasing by the port occupancy (FIFO).
    deliveries = [bar.grant(a, 0.0) for a in (addr, same_port, addr)]
    assert deliveries == [4.0, 5.0, 6.0]
    assert bar.queued == 2
    assert bar.total_wait_ns == pytest.approx(1.0 + 2.0)


def test_crossbar_ports_do_not_contend():
    bar = CrossbarInterconnect(ports=2, latency_ns=4.0, occupancy_ns=1.0)
    assert bar.grant(0, 0.0) == 4.0    # port 0
    assert bar.grant(64, 0.0) == 4.0   # port 1: unaffected
    assert bar.queued == 0


def test_crossbar_idle_port_does_not_wait():
    bar = CrossbarInterconnect(ports=1, latency_ns=4.0, occupancy_ns=1.0)
    bar.grant(0, 0.0)
    # Arriving after the port freed: no queuing recorded.
    assert bar.grant(0, 10.0) == 14.0
    assert bar.queued == 0


def test_crossbar_occupancy_accounting():
    bar = CrossbarInterconnect(ports=4, latency_ns=4.0, occupancy_ns=2.0)
    for i in range(8):
        bar.grant(i * 64, 0.0)
    assert bar.busy_ns == pytest.approx(16.0)
    # 16 ns of port-time over 4 ports x 100 ns.
    assert bar.occupancy(100.0) == pytest.approx(0.04)
    assert bar.stats(100.0)["occupancy"] == pytest.approx(0.04)
    assert bar.occupancy(0.0) == 0.0


def test_crossbar_validation():
    with pytest.raises(ValueError, match="occupancy_ns"):
        CrossbarInterconnect(occupancy_ns=0.0)
    with pytest.raises(ValueError, match="at least one port"):
        CrossbarInterconnect(ports=0)


# ----------------------------------------------------------------------
# Registry + front shim
# ----------------------------------------------------------------------
def test_interconnect_registry_spellings():
    assert sorted(INTERCONNECTS.available()) == ["crossbar", "fixed", "none"]
    assert make_interconnect("none") is None
    assert isinstance(make_interconnect("fixed"), FixedLatencyInterconnect)
    bar = make_interconnect("crossbar", ports=8)
    assert isinstance(bar, CrossbarInterconnect) and bar.ports == 8
    with pytest.raises(ValueError) as excinfo:
        INTERCONNECTS.get("mesh")
    assert "(config field 'interconnect')" in str(excinfo.value)


def test_front_delivers_in_grant_order():
    class SinkMemory:
        def __init__(self, engine):
            self.engine = engine
            self.arrivals = []

        def enqueue(self, request):
            self.arrivals.append((self.engine.now, request.phys_addr))

    engine = Engine()
    memory = SinkMemory(engine)
    front = InterconnectFront(
        engine, memory, CrossbarInterconnect(ports=1, latency_ns=4.0, occupancy_ns=1.0)
    )
    for addr in (0, 64, 128):
        front.enqueue(MemRequest(phys_addr=addr))
    engine.run()
    # One port: arrivals keep issue order and are spaced by occupancy.
    assert memory.arrivals == [(4.0, 0), (5.0, 64), (6.0, 128)]
