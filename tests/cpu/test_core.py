"""Unit tests for the trace-driven core model."""


from repro.controller.controller import MemoryController
from repro.core.engine import Engine
from repro.cpu.core import CoreParams, TraceCore
from repro.cpu.trace import TraceCursor, synthesize_trace
from repro.dram.config import small_test_config
from repro.mitigations.base import NoMitigationPolicy


def _run_core(records, params=None, max_requests=None):
    engine = Engine()
    controller = MemoryController(
        engine, small_test_config(), policy=NoMitigationPolicy(),
        enable_refresh=False, enable_abo=False,
    )
    core = TraceCore(
        engine, controller, TraceCursor(records), core_id=0,
        params=params, max_requests=max_requests,
    )
    core.start()
    engine.run(until=100_000_000)
    return core


def test_core_completes_trace():
    records = synthesize_trace([i * 8192 * 64 for i in range(10)], gap_insts=10)
    core = _run_core(records)
    assert core.finished
    assert core.dram_requests == 10
    assert core.insts_retired == 10 * 11


def test_ipc_positive_and_bounded_by_width():
    records = synthesize_trace([0] * 20, gap_insts=100)
    core = _run_core(records)
    assert 0 < core.ipc <= core.params.width


def test_compute_heavy_trace_has_higher_ipc():
    lean = _run_core(synthesize_trace([i * 2**20 for i in range(20)], gap_insts=2))
    fat = _run_core(synthesize_trace([i * 2**20 for i in range(20)], gap_insts=500))
    assert fat.ipc > lean.ipc


def test_rob_window_limits_run_ahead():
    """With rob_size=1 every miss serializes; bigger ROB overlaps."""
    addresses = [i * 2**22 for i in range(30)]   # all different banks/rows
    slow = _run_core(
        synthesize_trace(addresses, gap_insts=0),
        params=CoreParams(rob_size=1),
    )
    fast = _run_core(
        synthesize_trace(addresses, gap_insts=0),
        params=CoreParams(rob_size=352),
    )
    assert fast.finish_time < slow.finish_time


def test_max_requests_budget_stops_core():
    records = synthesize_trace([i * 2**20 for i in range(50)], gap_insts=1)
    core = _run_core(records, max_requests=10)
    assert core.finished
    assert core.dram_requests == 10


def test_start_is_idempotent():
    records = synthesize_trace([0], gap_insts=1)
    engine = Engine()
    controller = MemoryController(
        engine, small_test_config(), policy=NoMitigationPolicy(),
        enable_refresh=False,
    )
    core = TraceCore(engine, controller, TraceCursor(records), core_id=0)
    core.start()
    core.start()
    engine.run(until=10_000_000)
    assert core.dram_requests == 1


def test_empty_trace_finishes_immediately():
    core = _run_core([])
    assert core.finished
    assert core.insts_retired == 0
