"""Unit tests for the event-driven L1/L2 hierarchy (``cache="l1l2"``)."""

import pytest

from repro.core.engine import Engine
from repro.controller.request import MemRequest
from repro.cpu.hierarchy import CACHES, MemoryHierarchy, SetAssocCache


class FakeMemory:
    """Memory-target stub: records requests, completes reads after a delay."""

    def __init__(self, engine, latency_ns=100.0):
        self.engine = engine
        self.latency_ns = latency_ns
        self.reads = []
        self.writes = []

    def enqueue(self, request):
        if request.is_write:
            self.writes.append(request.phys_addr)
            return
        self.reads.append(request.phys_addr)
        self.engine.schedule(
            self.engine.now + self.latency_ns,
            lambda: request.complete(self.engine.now),
        )


def make_hierarchy(engine, memory, **kwargs):
    defaults = dict(
        num_cores=2,
        l1_size=2 * 64,
        l1_ways=2,
        l2_size=4 * 64,
        l2_ways=4,
        l2_banks=1,
    )
    defaults.update(kwargs)
    return MemoryHierarchy(engine, memory, **defaults)


def run_requests(hierarchy, engine, specs):
    """Issue (addr, is_write, core) specs sequentially, one at a time."""
    done = []
    for addr, is_write, core in specs:
        hierarchy.enqueue(
            MemRequest(
                phys_addr=addr,
                is_write=is_write,
                core_id=core,
                arrive_time=engine.now,
                on_complete=lambda r: done.append(r),
            )
        )
        engine.run()
    return done


# ----------------------------------------------------------------------
# SetAssocCache: address arithmetic and replacement
# ----------------------------------------------------------------------
def test_locate_line_addr_round_trip():
    cache = SetAssocCache("t", size_bytes=8 * 1024, ways=4, line_bytes=64)
    for phys in (0, 64, 63, 4096, 4097, 8 * 1024, 123456789):
        set_index, tag = cache.locate(phys)
        assert 0 <= set_index < cache.num_sets
        # The reconstructed line address is phys rounded down to a line.
        assert cache.line_addr(set_index, tag) == (phys // 64) * 64
        # And locating it again lands in the same (set, tag).
        assert cache.locate(cache.line_addr(set_index, tag)) == (set_index, tag)


def test_distinct_lines_distinct_slots():
    cache = SetAssocCache("t", size_bytes=4 * 1024, ways=4, line_bytes=64)
    seen = set()
    for phys in range(0, 64 * 1024, 64):
        slot = cache.locate(phys)
        assert slot not in seen
        seen.add(slot)
        assert cache.line_addr(*slot) == phys


def test_lru_and_plru_pick_different_victims():
    # 4 ways, one set; install A..D, touch A, then install E.  Exact
    # LRU evicts B (oldest untouched); tree PLRU walks its bits to C.
    a, b, c, d, e = 0, 64, 128, 192, 256
    victims = {}
    for policy in ("lru", "plru"):
        cache = SetAssocCache("t", size_bytes=4 * 64, ways=4, replacement=policy)
        for line in (a, b, c, d):
            cache.install(line)
        assert cache.access(a)
        cache.install(e)
        victims[policy] = [
            line for line in (a, b, c, d) if not cache.contains(line)
        ]
    assert victims["lru"] == [b]
    assert victims["plru"] == [c]


def test_plru_requires_power_of_two_ways():
    with pytest.raises(ValueError, match="power-of-two"):
        SetAssocCache("t", size_bytes=3 * 64, ways=3, replacement="plru")
    with pytest.raises(ValueError, match="unknown replacement"):
        SetAssocCache("t", size_bytes=4 * 64, ways=4, replacement="random")


def test_install_returns_dirty_victim():
    cache = SetAssocCache("t", size_bytes=2 * 64, ways=2)
    assert cache.install(0, dirty=True) is None
    assert cache.install(64) is None
    victim = cache.install(128)
    assert victim == (0, True)
    assert cache.stats.writebacks == 1


def test_access_does_not_fill():
    # Unlike the synchronous model, a demand miss must not install the
    # line: the fill happens when DRAM returns it.
    cache = SetAssocCache("t", size_bytes=2 * 64, ways=2)
    assert not cache.access(0)
    assert not cache.contains(0)
    assert cache.stats.misses == 1


# ----------------------------------------------------------------------
# MemoryHierarchy: MSHRs, stalls, writebacks
# ----------------------------------------------------------------------
def test_mshr_merges_same_line_misses():
    engine = Engine()
    memory = FakeMemory(engine)
    hierarchy = make_hierarchy(engine, memory)
    done = []
    for core in (0, 1):
        hierarchy.enqueue(
            MemRequest(
                phys_addr=0,
                core_id=core,
                on_complete=lambda r: done.append(r.core_id),
            )
        )
    engine.run()
    # Two cores missed on the same line: one DRAM read, one merge,
    # both requests completed by the single fill.
    assert memory.reads == [0]
    assert hierarchy.mshr_merges == 1
    assert sorted(done) == [0, 1]
    assert hierarchy.dram_reads == 1
    # The line is now in the L2 and in both cores' L1s.
    assert hierarchy.l2.contains(0)
    assert all(l1.contains(0) for l1 in hierarchy.l1s)


def test_mshr_full_stalls_then_releases():
    engine = Engine()
    memory = FakeMemory(engine)
    hierarchy = make_hierarchy(engine, memory, mshrs=1)
    done = []
    for addr in (0, 64):
        hierarchy.enqueue(
            MemRequest(
                phys_addr=addr,
                on_complete=lambda r: done.append(r.phys_addr),
            )
        )
    engine.run()
    # The second miss found the only MSHR busy, stalled, and was
    # released by the first fill; both ultimately read DRAM.
    assert hierarchy.mshr_stalls == 1
    assert sorted(memory.reads) == [0, 64]
    assert sorted(done) == [0, 64]


def test_dirty_l1_eviction_reaches_dram():
    # L1: 1 set x 1 way; L2: 1 set x 2 ways.  Writing A then touching
    # B, C, D forces A out of the L1 (write-back into L2) and then out
    # of the L2 — the dirty line must surface as a DRAM write.
    engine = Engine()
    memory = FakeMemory(engine)
    hierarchy = make_hierarchy(
        engine,
        memory,
        num_cores=1,
        l1_size=64,
        l1_ways=1,
        l2_size=2 * 64,
        l2_ways=2,
    )
    a, b, c, d = 0, 64, 128, 192
    run_requests(
        hierarchy, engine, [(a, True, 0), (b, False, 0), (c, False, 0), (d, False, 0)]
    )
    assert a in memory.writes
    assert hierarchy.dram_writebacks == 1
    assert hierarchy.stats_dict()["dram_writebacks"] == 1


def test_hierarchy_filters_dram_traffic():
    engine = Engine()
    memory = FakeMemory(engine)
    hierarchy = make_hierarchy(engine, memory, num_cores=1)
    done = run_requests(hierarchy, engine, [(0, False, 0)] * 10)
    # Ten same-line requests, one DRAM read: nine hits stayed on-chip.
    assert len(done) == 10
    assert memory.reads == [0]
    stats = hierarchy.stats_dict()
    assert stats["l1"]["hits"] == 9
    assert stats["l2"]["misses"] == 1


def test_l2_hit_installs_l1():
    # Fill via core 0, then access from core 1: core 1 misses its L1,
    # hits the shared L2, and gets the line installed in its own L1.
    engine = Engine()
    memory = FakeMemory(engine)
    hierarchy = make_hierarchy(engine, memory)
    run_requests(hierarchy, engine, [(0, False, 0), (0, False, 1)])
    assert memory.reads == [0]
    assert hierarchy.l1s[1].contains(0)
    assert hierarchy.l2.stats.hits == 1


def test_requests_take_simulated_time():
    engine = Engine()
    memory = FakeMemory(engine, latency_ns=50.0)
    hierarchy = make_hierarchy(engine, memory, num_cores=1)
    done = run_requests(hierarchy, engine, [(0, False, 0), (0, False, 0)])
    # Miss pays L1 + L2 + DRAM; the later hit pays only the L1 latency.
    assert done[0].latency >= 50.0
    assert done[1].latency == pytest.approx(hierarchy.l1_latency_ns)


def test_constructor_validation():
    engine = Engine()
    memory = FakeMemory(engine)
    with pytest.raises(ValueError, match="at least one core"):
        make_hierarchy(engine, memory, num_cores=0)
    with pytest.raises(ValueError, match="mshrs"):
        make_hierarchy(engine, memory, mshrs=0)


# ----------------------------------------------------------------------
# Registry + System integration
# ----------------------------------------------------------------------
def test_caches_registry_spellings():
    assert sorted(CACHES.available()) == ["l1l2", "none"]
    assert CACHES.make("none") is None
    with pytest.raises(ValueError) as excinfo:
        CACHES.get("l3")
    assert "(config field 'cache')" in str(excinfo.value)


def test_cache_none_matches_direct_wiring():
    # cache="none" must be byte-for-byte the historical direct path:
    # same IPC, same elapsed time, same DRAM request count.
    from repro.config import SystemConfig
    from repro.experiments.common import (
        DesignPoint,
        build_system,
        homogeneous_traces,
    )

    point = DesignPoint(design="tprac", nrh=1024)
    results = []
    for system in (None, SystemConfig(cache="none", interconnect="none")):
        traces = homogeneous_traces(
            "433.milc", cores=2, num_accesses=300, seed=0
        )
        results.append(build_system(point, traces, system=system).run())
    base, spelled = results
    assert spelled.ipcs == base.ipcs
    assert spelled.mean_latency_ns == base.mean_latency_ns
    assert spelled.elapsed_ns == base.elapsed_ns
    assert spelled.dram_requests == base.dram_requests
    assert spelled.cache is None and spelled.interconnect is None


def test_system_result_carries_cache_stats():
    from repro.config import SystemConfig
    from repro.experiments.common import (
        DesignPoint,
        build_system,
        homogeneous_traces,
    )

    traces = homogeneous_traces("433.milc", cores=2, num_accesses=300, seed=0)
    system = build_system(
        DesignPoint(design="tprac", nrh=1024),
        traces,
        system=SystemConfig(cache="l1l2", interconnect="crossbar"),
    )
    result = system.run()
    assert result.cache is not None
    assert 0.0 <= result.cache["l1"]["hit_rate"] <= 1.0
    assert result.cache["dram_reads"] > 0
    assert result.interconnect is not None
    assert result.interconnect["kind"] == "crossbar"
    assert result.interconnect["transfers"] > 0
