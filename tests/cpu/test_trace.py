"""Unit tests for trace records and cursors."""

import pytest

from repro.cpu.trace import (
    TraceCursor,
    TraceRecord,
    synthesize_trace,
    total_instructions,
)


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(gap_insts=-1, phys_addr=0)
    with pytest.raises(ValueError):
        TraceRecord(gap_insts=0, phys_addr=-4)


def test_synthesize_trace_marks_writes():
    trace = synthesize_trace([0, 64, 128, 192], gap_insts=5, write_every=2)
    assert [r.is_write for r in trace] == [False, True, False, True]
    assert all(r.gap_insts == 5 for r in trace)


def test_synthesize_readonly_by_default():
    trace = synthesize_trace([0, 64])
    assert not any(r.is_write for r in trace)


def test_cursor_iterates_once_without_loop():
    cursor = TraceCursor(synthesize_trace([0, 64]))
    assert cursor.next().phys_addr == 0
    assert cursor.next().phys_addr == 64
    assert cursor.next() is None
    assert cursor.exhausted


def test_cursor_loops_when_asked():
    cursor = TraceCursor(synthesize_trace([0, 64]), loop=True)
    addrs = [cursor.next().phys_addr for _ in range(5)]
    assert addrs == [0, 64, 0, 64, 0]
    assert cursor.laps == 2
    assert not cursor.exhausted


def test_empty_looping_cursor_returns_none():
    cursor = TraceCursor([], loop=True)
    assert cursor.next() is None


def test_total_instructions():
    trace = synthesize_trace([0, 64], gap_insts=9)
    assert total_instructions(trace) == 20
