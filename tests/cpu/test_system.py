"""Integration tests for the multicore System wrapper."""

import pytest

from repro.cpu.system import System
from repro.cpu.trace import synthesize_trace
from repro.dram.config import small_test_config
from repro.mitigations import NoMitigationPolicy, TpracPolicy
from repro.workloads.synthetic import homogeneous_traces


def _traces(cores=2, n=60):
    return [
        synthesize_trace([(c * 1000 + i) * 2**18 for i in range(n)], gap_insts=20)
        for c in range(cores)
    ]


def test_system_runs_all_cores():
    system = System(
        _traces(), config=small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False,
    )
    result = system.run()
    assert len(result.ipcs) == 2
    assert all(ipc > 0 for ipc in result.ipcs)
    assert result.dram_requests == 120


def test_empty_traces_rejected():
    with pytest.raises(ValueError):
        System([])


def test_result_aggregates_rfms_by_provenance():
    system = System(
        _traces(),
        config=small_test_config(),
        policy=TpracPolicy(tb_window=2000.0),
        enable_abo=False,
    )
    result = system.run()
    assert result.rfm_total > 0
    assert result.rfm_by_provenance.get("tb", 0) == result.rfm_total


def test_tprac_slows_down_vs_baseline():
    traces = homogeneous_traces("470.lbm", cores=2, num_accesses=2500)
    base = System(traces, policy=NoMitigationPolicy(), enable_abo=False).run()
    # Aggressively short TB-Window so several RFMs land in the run.
    slow = System(traces, policy=TpracPolicy(tb_window=2000.0)).run()
    assert slow.rfm_total > 3
    assert slow.total_ipc < base.total_ipc
    assert 0.70 < slow.total_ipc / base.total_ipc < 1.0


def test_identical_runs_are_deterministic():
    traces = _traces()

    def once():
        return System(
            traces, config=small_test_config(), policy=NoMitigationPolicy(),
            enable_abo=False,
        ).run()

    first, second = once(), once()
    assert first.ipcs == second.ipcs
    assert first.elapsed_ns == second.elapsed_ns


def test_use_caches_reduces_dram_traffic():
    # A tiny, reused footprint: caches should absorb repeats.
    records = synthesize_trace([0, 64, 128] * 50, gap_insts=10)
    no_cache = System(
        [records], config=small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False, use_caches=False,
    ).run()
    cached = System(
        [records], config=small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False, use_caches=True,
    ).run()
    assert cached.dram_requests < no_cache.dram_requests
