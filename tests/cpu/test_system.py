"""Integration tests for the multicore System wrapper."""

import pytest

from repro.cpu.system import System
from repro.cpu.trace import synthesize_trace
from repro.dram.config import small_test_config
from repro.mitigations import NoMitigationPolicy, TpracPolicy
from repro.workloads.synthetic import homogeneous_traces


def _traces(cores=2, n=60):
    return [
        synthesize_trace([(c * 1000 + i) * 2**18 for i in range(n)], gap_insts=20)
        for c in range(cores)
    ]


def _line_traces(cores=2, n=60):
    """Cache-line-granular addresses, so requests stripe across channels."""
    return [
        synthesize_trace(
            [(c * 4096 + i) * 64 for i in range(n)], gap_insts=20
        )
        for c in range(cores)
    ]


def test_system_runs_all_cores():
    system = System(
        _traces(), config=small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False,
    )
    result = system.run()
    assert len(result.ipcs) == 2
    assert all(ipc > 0 for ipc in result.ipcs)
    assert result.dram_requests == 120


def test_empty_traces_rejected():
    with pytest.raises(ValueError):
        System([])


def test_result_aggregates_rfms_by_provenance():
    system = System(
        _traces(),
        config=small_test_config(),
        policy=TpracPolicy(tb_window=2000.0),
        enable_abo=False,
    )
    result = system.run()
    assert result.rfm_total > 0
    assert result.rfm_by_provenance.get("tb", 0) == result.rfm_total


def test_tprac_slows_down_vs_baseline():
    traces = homogeneous_traces("470.lbm", cores=2, num_accesses=2500)
    base = System(traces, policy=NoMitigationPolicy(), enable_abo=False).run()
    # Aggressively short TB-Window so several RFMs land in the run.
    slow = System(traces, policy=TpracPolicy(tb_window=2000.0)).run()
    assert slow.rfm_total > 3
    assert slow.total_ipc < base.total_ipc
    assert 0.70 < slow.total_ipc / base.total_ipc < 1.0


def test_identical_runs_are_deterministic():
    traces = _traces()

    def once():
        return System(
            traces, config=small_test_config(), policy=NoMitigationPolicy(),
            enable_abo=False,
        ).run()

    first, second = once(), once()
    assert first.ipcs == second.ipcs
    assert first.elapsed_ns == second.elapsed_ns


def test_multi_channel_conserves_requests_and_reports_per_channel():
    config = small_test_config().with_organization(channels=2)
    system = System(
        _line_traces(),
        config=config,
        policy_factory=NoMitigationPolicy,
        enable_abo=False,
    )
    result = system.run()
    assert len(system.memory.controllers) == 2
    assert result.dram_requests == 120
    assert len(result.per_channel) == 2
    assert [c.channel for c in result.per_channel] == [0, 1]
    assert sum(c.requests for c in result.per_channel) == 120
    assert all(c.requests > 0 for c in result.per_channel)
    assert result.activations == sum(c.activations for c in result.per_channel)


def test_multi_channel_rejects_single_policy_instance():
    config = small_test_config().with_organization(channels=2)
    with pytest.raises(ValueError, match="policy_factory"):
        System(_traces(), config=config, policy=NoMitigationPolicy())


def test_multi_channel_rfms_stay_per_channel():
    config = small_test_config().with_organization(channels=2)
    system = System(
        _line_traces(cores=2, n=200),
        config=config,
        policy_factory=lambda: TpracPolicy(tb_window=600.0),
        enable_abo=False,
    )
    result = system.run()
    assert result.rfm_total > 0
    assert result.rfm_total == sum(c.rfms for c in result.per_channel)
    # Both channels saw traffic, so both TB timers issued RFMs.
    assert all(c.rfms > 0 for c in result.per_channel)


def test_multi_channel_is_deterministic():
    config = small_test_config().with_organization(channels=2)

    def once():
        return System(
            _line_traces(),
            config=config,
            policy_factory=NoMitigationPolicy,
            enable_abo=False,
        ).run()

    first, second = once(), once()
    assert first.ipcs == second.ipcs
    assert first.elapsed_ns == second.elapsed_ns
    assert [c.requests for c in first.per_channel] == [
        c.requests for c in second.per_channel
    ]


def test_single_channel_controller_alias_preserved():
    system = System(
        _traces(), config=small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False,
    )
    assert system.controller is system.memory.controllers[0]
    assert system.memory.stats is system.controller.stats


def test_use_caches_reduces_dram_traffic():
    # A tiny, reused footprint: caches should absorb repeats.
    records = synthesize_trace([0, 64, 128] * 50, gap_insts=10)
    no_cache = System(
        [records], config=small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False, use_caches=False,
    ).run()
    cached = System(
        [records], config=small_test_config(), policy=NoMitigationPolicy(),
        enable_abo=False, use_caches=True,
    ).run()
    assert cached.dram_requests < no_cache.dram_requests
