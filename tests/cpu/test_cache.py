"""Unit tests for the cache model."""

import pytest

from repro.cpu.cache import Cache, CacheHierarchy


def test_miss_then_hit():
    cache = Cache("L1", size_bytes=4096, ways=4)
    hit, wb = cache.access(0)
    assert not hit and wb is None
    hit, wb = cache.access(0)
    assert hit


def test_size_must_divide():
    with pytest.raises(ValueError):
        Cache("bad", size_bytes=1000, ways=3)


def test_lru_eviction_order():
    # 2 ways, 1 set: third distinct line evicts the least recent.
    cache = Cache("tiny", size_bytes=128, ways=2)
    cache.access(0)        # line A
    cache.access(64)       # line B
    cache.access(0)        # touch A -> B becomes LRU
    cache.access(128)      # evicts B
    assert cache.contains(0)
    assert not cache.contains(64)
    assert cache.contains(128)


def test_dirty_eviction_reports_writeback_address():
    cache = Cache("tiny", size_bytes=128, ways=2)
    cache.access(0, is_write=True)
    cache.access(64)
    hit, wb = cache.access(128)
    assert wb == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = Cache("tiny", size_bytes=128, ways=2)
    cache.access(0)
    cache.access(64)
    hit, wb = cache.access(128)
    assert wb is None


def test_write_hit_marks_dirty():
    cache = Cache("tiny", size_bytes=128, ways=2)
    cache.access(0)
    cache.access(0, is_write=True)
    cache.access(64)
    _, wb = cache.access(128)
    assert wb == 0


def test_flush_removes_line():
    cache = Cache("tiny", size_bytes=128, ways=2)
    cache.access(0)
    assert cache.flush(0) is True
    assert not cache.contains(0)
    assert cache.flush(0) is False


def test_hit_rate_stat():
    cache = Cache("tiny", size_bytes=128, ways=2)
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == 0.5


def test_hierarchy_walks_levels():
    hierarchy = CacheHierarchy()
    needs_dram, latency, wb = hierarchy.access(0)
    assert needs_dram
    assert latency == pytest.approx(
        hierarchy.l1.latency_ns + hierarchy.l2.latency_ns + hierarchy.llc.latency_ns
    )
    needs_dram, latency, wb = hierarchy.access(0)
    assert not needs_dram
    assert latency == pytest.approx(hierarchy.l1.latency_ns)


def test_dirty_l1_eviction_propagates_to_dram():
    # Regression: a line dirty *only in the L1* (clean demand fill,
    # then a write hit) used to vanish on eviction — the dirty victim
    # was never installed in the next level, and only the last level's
    # own writeback was reported.  With every level sized 1 set x 1
    # way, evicting A must write it back level by level until it falls
    # past the LLC and reaches DRAM.
    tiny = lambda name: Cache(name, size_bytes=64, ways=1)
    hierarchy = CacheHierarchy(l1=tiny("L1"), l2=tiny("L2"), llc=tiny("LLC"))
    hierarchy.access(0)                    # clean fill of every level
    hierarchy.access(0, is_write=True)     # L1 write hit: dirty in L1 only
    _, _, writebacks = hierarchy.access(64)
    assert 0 in writebacks, "dirty L1 victim never reached DRAM"


def test_clean_victims_never_reach_dram():
    tiny = lambda name: Cache(name, size_bytes=64, ways=1)
    hierarchy = CacheHierarchy(l1=tiny("L1"), l2=tiny("L2"), llc=tiny("LLC"))
    hierarchy.access(0)
    _, _, wb1 = hierarchy.access(64)
    _, _, wb2 = hierarchy.access(128)
    assert wb1 == [] and wb2 == []


def test_hierarchy_flush_clears_every_level():
    hierarchy = CacheHierarchy()
    hierarchy.access(0)
    hierarchy.flush(0)
    needs_dram, _, _ = hierarchy.access(0)
    assert needs_dram


def test_invalidate_all():
    cache = Cache("tiny", size_bytes=128, ways=2)
    cache.access(0)
    cache.invalidate_all()
    assert not cache.contains(0)
