"""Tests for trace file I/O."""

import io

import pytest

from repro.cpu.trace import TraceRecord, synthesize_trace
from repro.cpu.tracefile import dump_trace, load_trace, roundtrip


def test_roundtrip_preserves_records():
    records = synthesize_trace([0, 64, 4096], gap_insts=7, write_every=2)
    assert roundtrip(records) == records


def test_dump_format(tmp_path):
    path = tmp_path / "trace.txt"
    count = dump_trace([TraceRecord(3, 0x1000, True)], path)
    assert count == 1
    text = path.read_text()
    assert "3 0x1000 W" in text
    assert text.startswith("#")


def test_load_from_path(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# comment\n5 0x40 R\n\n0 64 W\n")
    records = load_trace(path)
    assert records == [
        TraceRecord(5, 0x40, False),
        TraceRecord(0, 64, True),
    ]


def test_load_rejects_malformed_lines():
    with pytest.raises(ValueError, match="line 2"):
        load_trace(io.StringIO("1 0x0 R\nbad line with too many fields here\n"))


def test_load_rejects_bad_kind():
    with pytest.raises(ValueError, match="R or W"):
        load_trace(io.StringIO("1 0x0 X\n"))


def test_decimal_addresses_accepted():
    records = load_trace(io.StringIO("0 128 R\n"))
    assert records[0].phys_addr == 128


def test_large_trace_roundtrip(tmp_path):
    records = synthesize_trace(range(0, 64000, 64), gap_insts=1)
    path = tmp_path / "big.txt"
    dump_trace(records, path)
    assert load_trace(path) == records
