"""The public facade (``repro.api``) stays importable and complete."""

import repro.api as api


def test_every_exported_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_facade_covers_the_component_registries():
    # Every component axis's registry is reachable from the facade, so
    # downstream code never needs to deep-import a defining module.
    registries = api.component_registries()
    assert set(registries) == set(api.COMPONENT_AXES)
    facade_registries = {
        api.SCHEDULERS,
        api.MAPPINGS,
        api.REFRESH_POLICIES,
        api.CACHES,
        api.INTERCONNECTS,
        api.ENGINES,
    }
    assert set(registries.values()) == facade_registries
    assert "tprac" in api.MITIGATIONS.available()


def test_facade_assembles_a_running_system():
    from repro.experiments.common import homogeneous_traces

    traces = homogeneous_traces("433.milc", cores=1, num_accesses=200, seed=0)
    system = api.build_system(
        api.DesignPoint(design="tprac", nrh=1024),
        traces,
        system=api.SystemConfig(cache="l1l2"),
    )
    result = system.run()
    assert isinstance(result, api.SystemResult)
    assert result.cache is not None


def test_facade_expands_the_new_axes():
    scenarios = api.expand_grid(
        {
            "attack": ["perf"],
            "cache": ["none", "l1l2"],
            "interconnect": ["fixed"],
        }
    )
    assert len(scenarios) == 2
    assert all(isinstance(s, api.Scenario) for s in scenarios)
    assert "eviction_set" in api.ATTACK_KINDS
