"""Tests for the AES victim's DRAM-row access behaviour."""

import pytest

from repro.crypto.victim import AesVictim, TTableLayout
from repro.dram.address import MopMapping
from repro.dram.config import ddr5_8000b


def test_layout_distinct_rows_for_all_64_lines():
    layout = TTableLayout(bank=0, base_row=100)
    rows = {
        layout.row_of(table, line) for table in range(4) for line in range(16)
    }
    assert len(rows) == 64
    assert min(rows) == 100


def test_layout_validates_arguments():
    layout = TTableLayout(bank=0, base_row=0)
    with pytest.raises(ValueError):
        layout.row_of(4, 0)
    with pytest.raises(ValueError):
        layout.row_of(0, 16)


def test_layout_phys_addr_round_trips_through_mapping():
    layout = TTableLayout(bank=2, base_row=10)
    mapping = MopMapping(ddr5_8000b().organization)
    phys = layout.phys_addr(mapping, table=1, cache_line=3)
    decoded = mapping.decode(phys)
    assert decoded.row == layout.row_of(1, 3)


def test_hot_row_matches_key_nibble():
    key = bytes([0x9C]) + bytes(15)
    victim = AesVictim(key)
    _, hist = victim.first_round_rows(target_byte=0, fixed_value=0, encryptions=150)
    hot = victim.hottest_row(hist)
    assert hot == victim.expected_hot_line(0, 0) == 0x9


def test_hot_row_shifts_with_plaintext():
    key = bytes([0x00]) + bytes(15)
    victim = AesVictim(key)
    _, hist = victim.first_round_rows(target_byte=0, fixed_value=0xF0, encryptions=150)
    assert victim.hottest_row(hist) == 0xF


def test_hot_row_roughly_double_background():
    victim = AesVictim(bytes(16))
    _, hist = victim.first_round_rows(target_byte=0, fixed_value=0, encryptions=200)
    hot = victim.hottest_row(hist)
    background = [count for row, count in hist.items() if row != hot]
    mean_bg = sum(background) / len(background)
    # Hot line: ~1 deterministic hit/encryption + background share.
    assert hist[hot] > 3 * mean_bg
    assert hist[hot] >= 200


def test_other_target_bytes_use_their_table():
    key = bytes(16)
    victim = AesVictim(key)
    _, hist = victim.first_round_rows(target_byte=5, fixed_value=0, encryptions=50)
    table = 5 % 4
    layout_rows = set(victim.layout.table_rows(table))
    assert set(hist).issubset(layout_rows)


def test_chosen_plaintext_validation():
    victim = AesVictim(bytes(16))
    with pytest.raises(ValueError):
        victim.encrypt_chosen(16, 0)
    with pytest.raises(ValueError):
        victim.encrypt_chosen(0, 300)
    with pytest.raises(ValueError):
        victim.hottest_row({})


def test_stream_is_seeded_deterministic():
    a = AesVictim(bytes(16), seed=5).first_round_rows(0, 0, 20)
    b = AesVictim(bytes(16), seed=5).first_round_rows(0, 0, 20)
    assert a == b
