"""Tests for the AES-128 T-table implementation (FIPS-197 correctness)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes_ttable import (
    SBOX,
    INV_SBOX,
    TTABLES,
    AesTTable,
    expand_key,
    gf_mul,
)


def test_fips197_appendix_c_vector():
    aes = AesTTable(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    ct = aes.encrypt(bytes.fromhex("00112233445566778899aabbccddeeff"))
    assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_fips197_appendix_b_vector():
    aes = AesTTable(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    ct = aes.encrypt(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
    assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"


def test_sbox_is_a_permutation_with_known_anchors():
    assert sorted(SBOX) == list(range(256))
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED


def test_inverse_sbox_inverts():
    assert all(INV_SBOX[SBOX[x]] == x for x in range(256))


def test_gf_mul_basics():
    assert gf_mul(0x57, 0x01) == 0x57
    assert gf_mul(0x57, 0x02) == 0xAE
    assert gf_mul(0x57, 0x13) == 0xFE   # FIPS-197 section 4.2 example


def test_ttables_are_rotations_of_t0():
    def rot(w, bits):
        return ((w >> bits) | (w << (32 - bits))) & 0xFFFFFFFF

    for index in range(256):
        w = TTABLES[0][index]
        assert TTABLES[1][index] == rot(w, 8)
        assert TTABLES[2][index] == rot(w, 16)
        assert TTABLES[3][index] == rot(w, 24)


def test_key_expansion_length_and_first_words():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    words = expand_key(key)
    assert len(words) == 44
    assert words[0] == 0x2B7E1516
    assert words[4] == 0xA0FAFE17   # FIPS-197 Appendix A.1


def test_key_must_be_16_bytes():
    with pytest.raises(ValueError):
        AesTTable(b"short")


def test_block_must_be_16_bytes():
    with pytest.raises(ValueError):
        AesTTable(bytes(16)).encrypt(b"x")


def test_first_round_accesses_are_p_xor_k():
    key = bytes(range(16))
    aes = AesTTable(key)
    plaintext = bytes([0xAA] * 16)
    accesses = aes.first_round_accesses(plaintext)
    assert len(accesses) == 16
    expected = sorted((i % 4, 0xAA ^ key[i]) for i in range(16))
    assert sorted((a.table, a.index) for a in accesses) == expected


def test_access_recording_can_be_disabled():
    aes = AesTTable(bytes(16))
    aes.record_accesses = False
    aes.encrypt(bytes(16))
    assert aes.accesses == []


def test_cache_line_is_top_nibble():
    from repro.crypto.aes_ttable import TableAccess

    assert TableAccess(1, 0, 0x37).cache_line == 3
    assert TableAccess(1, 0, 0x0F).cache_line == 0


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), pt=st.binary(min_size=16, max_size=16))
def test_encryption_is_deterministic_and_records_160_lookups(key, pt):
    aes = AesTTable(key)
    first = aes.encrypt(pt)
    aes.clear_trace()
    second = aes.encrypt(pt)
    assert first == second
    # 9 T-table rounds x 16 lookups + 16 final-round S-box lookups.
    assert len(aes.accesses) == 160
