"""Cross-validation: T-table AES vs the reference round-function AES."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes_reference import encrypt_block
from repro.crypto.aes_ttable import AesTTable


def test_reference_matches_fips197_vector():
    ct = encrypt_block(
        bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
        bytes.fromhex("00112233445566778899aabbccddeeff"),
    )
    assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_reference_validates_inputs():
    with pytest.raises(ValueError):
        encrypt_block(b"short", bytes(16))
    with pytest.raises(ValueError):
        encrypt_block(bytes(16), b"short")


@settings(max_examples=60, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), pt=st.binary(min_size=16, max_size=16))
def test_implementations_agree_on_random_inputs(key, pt):
    """Two independent implementations, bit-identical ciphertexts."""
    assert AesTTable(key).encrypt(pt) == encrypt_block(key, pt)


@settings(max_examples=30, deadline=None)
@given(key=st.binary(min_size=16, max_size=16))
def test_avalanche_on_plaintext_bit_flip(key):
    """Flipping one plaintext bit changes roughly half the ciphertext."""
    base = encrypt_block(key, bytes(16))
    flipped = encrypt_block(key, bytes([0x01]) + bytes(15))
    differing = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
    assert 30 <= differing <= 98     # ~64 expected over 128 bits


def test_distinct_keys_distinct_ciphertexts():
    pt = bytes(16)
    outputs = {encrypt_block(bytes([k]) + bytes(15), pt) for k in range(16)}
    assert len(outputs) == 16


def test_decrypt_inverts_fips197_vector():
    from repro.crypto.aes_reference import decrypt_block

    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    ct = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert decrypt_block(key, ct).hex() == "00112233445566778899aabbccddeeff"


@settings(max_examples=40, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), pt=st.binary(min_size=16, max_size=16))
def test_decrypt_roundtrips_encrypt(key, pt):
    from repro.crypto.aes_reference import decrypt_block

    assert decrypt_block(key, encrypt_block(key, pt)) == pt


def test_decrypt_validates_inputs():
    from repro.crypto.aes_reference import decrypt_block

    with pytest.raises(ValueError):
        decrypt_block(b"x", bytes(16))
    with pytest.raises(ValueError):
        decrypt_block(bytes(16), b"x")
