"""Property tests for the covert channels over random payloads."""

from hypothesis import given, settings, strategies as st

from repro.attacks.covert import ActivationCountChannel, ActivityChannel


@settings(max_examples=5, deadline=None)
@given(message=st.lists(st.integers(0, 1), min_size=2, max_size=6))
def test_activity_channel_transmits_any_message(message):
    result = ActivityChannel(nbo=256, message=message).run()
    assert result.received_bits == message


@settings(max_examples=5, deadline=None)
@given(values=st.lists(st.integers(0, 255), min_size=1, max_size=4))
def test_count_channel_transmits_any_values(values):
    result = ActivationCountChannel(nbo=256, values=values).run()
    assert result.error_rate == 0.0


@settings(max_examples=10, deadline=None)
@given(values=st.lists(st.integers(0, 255), min_size=1, max_size=4))
def test_count_channel_bit_encoding_roundtrip(values):
    """The bit (de)serialization itself is lossless."""
    from repro.attacks.covert import _values_to_bits

    bits = _values_to_bits(values, 8)
    decoded = [
        sum(b << (7 - j) for j, b in enumerate(bits[i * 8: (i + 1) * 8]))
        for i in range(len(values))
    ]
    assert decoded == values
