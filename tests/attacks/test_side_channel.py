"""End-to-end tests of the PRACLeak AES side channel + TPRAC defense."""

import pytest

from repro.attacks.side_channel import AesSideChannelAttack


KEY = bytes.fromhex("372a1f0c5b6e9d804142434445464748")


def test_recovers_key_nibble_byte0():
    attack = AesSideChannelAttack(KEY, nbo=256, encryptions=200)
    result = attack.run_single(target_byte=0, fixed_value=0)
    assert result.success
    assert result.recovered_nibble == KEY[0] >> 4 == 0x3


def test_recovers_nibbles_for_multiple_bytes():
    attack = AesSideChannelAttack(KEY, nbo=256, encryptions=200)
    for byte_index in (1, 2, 3):
        result = attack.run_single(target_byte=byte_index, fixed_value=0)
        assert result.success, f"byte {byte_index} failed"


def test_nonzero_plaintext_byte_still_recovers():
    attack = AesSideChannelAttack(KEY, nbo=256, encryptions=200)
    result = attack.run_single(target_byte=0, fixed_value=0xC8)
    assert result.recovered_nibble == KEY[0] >> 4


def test_victim_plus_attacker_acts_sum_to_nbo():
    """The paper's Figure 5(b) invariant."""
    attack = AesSideChannelAttack(KEY, nbo=256, encryptions=200)
    result = attack.run_single(target_byte=0, fixed_value=0)
    assert result.trigger_row is not None
    # The triggering row's victim activations + attacker activations
    # equal N_BO (within row-buffer-hit slack on the victim side).
    hot_row_victim = result.victim_histogram.get(result.trigger_row, 0)
    total = hot_row_victim + result.attacker_acts_on_trigger
    assert abs(total - 256) <= 16


def test_tprac_defense_blocks_recovery():
    attack = AesSideChannelAttack(KEY, nbo=256, encryptions=150, defense="tprac")
    results = [attack.run_single(0, 0), attack.run_single(1, 0)]
    # With TPRAC the first observed RFM is timing-based: no ABO fires
    # and the recovered nibble is uncorrelated with the key.
    assert all(len(r.rfm_times) > 0 for r in results)
    successes = sum(1 for r in results if r.success)
    assert successes == 0 or not all(r.success for r in results)


def test_defense_validation():
    with pytest.raises(ValueError):
        AesSideChannelAttack(KEY, defense="firewall")


def test_timeline_recording():
    attack = AesSideChannelAttack(
        KEY, nbo=256, encryptions=60, record_timeline=True
    )
    result = attack.run_single(0, 0)
    assert result.probe_timeline
    assert result.activation_timeline
    times = [t for t, _ in result.probe_timeline]
    assert times == sorted(times)


def test_key_sweep_tracks_nibble():
    attack = AesSideChannelAttack(bytes(16), nbo=256, encryptions=150)
    results = attack.run_key_sweep(target_byte=0, key_values=[0x00, 0x40, 0xF0])
    assert [r.true_nibble for r in results] == [0x0, 0x4, 0xF]
    assert all(r.success for r in results)
