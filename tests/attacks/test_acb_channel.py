"""Tests for the ACB-RFM timing channel (Figure 2(b)) and its closure."""

import pytest

from repro.attacks.acb_channel import AcbRfmChannel

MESSAGE = [1, 0, 1, 1, 0, 0, 1, 0]


def test_acb_rfms_leak_activity_levels():
    """The JEDEC Targeted-RFM flow is itself a covert channel."""
    result = AcbRfmChannel(bat=64, message=MESSAGE, defense="acb").run()
    assert result.error_rate == 0.0
    assert result.received_bits == MESSAGE
    # RFM counts correlate with the sender's activity.
    ones = [c for c, b in zip(result.rfm_counts_per_window, MESSAGE) if b]
    zeros = [c for c, b in zip(result.rfm_counts_per_window, MESSAGE) if not b]
    assert min(ones) >= 2
    assert max(zeros) <= 1


def test_tprac_flattens_rfm_counts():
    """Under TPRAC the RFM count per window is activity-independent."""
    result = AcbRfmChannel(bat=64, message=MESSAGE, defense="tprac").run()
    counts = result.rfm_counts_per_window
    assert max(counts) - min(counts) <= 1
    # The decoder can do no better than chance: its output carries no
    # correlation with the message (all-ones or all-zeros here).
    assert result.received_bits in (
        [1] * len(MESSAGE),
        [0] * len(MESSAGE),
    )


def test_defense_validation():
    with pytest.raises(ValueError):
        AcbRfmChannel(defense="none")


def test_all_zero_message_silent_under_acb():
    result = AcbRfmChannel(bat=64, message=[0, 0, 0, 0], defense="acb").run()
    assert result.received_bits == [0, 0, 0, 0]
    assert sum(result.rfm_counts_per_window) == 0
