"""Tests for attacker primitives: probes, senders, spike classification."""

import pytest

from repro.attacks.probes import (
    LatencyProbe,
    RowHammerSender,
    bank_address,
    is_rfm_spike,
)
from repro.controller.controller import MemoryController
from repro.core.engine import Engine
from repro.dram.commands import RfmProvenance
from repro.dram.config import ddr5_8000b, small_test_config
from repro.mitigations.base import NoMitigationPolicy


def _controller(config=None, enable_refresh=False):
    config = config or small_test_config()
    return MemoryController(
        Engine(), config, policy=NoMitigationPolicy(),
        enable_abo=False, enable_refresh=enable_refresh,
    )


def test_bank_address_targets_requested_bank_and_row():
    mc = _controller()
    for bank in range(mc.config.organization.banks_per_rank):
        addr = mc.mapping.decode(bank_address(mc, bank, row=7))
        assert addr.flat_bank(mc.config.organization) == bank
        assert addr.row == 7


def test_same_row_probe_causes_no_activations_after_first():
    mc = _controller()
    probe = LatencyProbe(mc, bank=1, mode="same_row")
    probe.start()
    mc.engine.run(until=5000.0)
    probe.stop()
    bank = mc.channel.bank(1)
    assert bank.stats.activations == 1      # only the first access opens
    assert len(probe.result.latencies) > 10
    assert probe.result.mean_latency < 100


def test_rotate_rows_probe_spreads_activations():
    mc = _controller()
    probe = LatencyProbe(mc, bank=1, mode="rotate_rows", rows=list(range(8)))
    probe.start()
    mc.engine.run(until=8000.0)
    probe.stop()
    bank = mc.channel.bank(1)
    counts = [bank.counter(r) for r in range(8)]
    assert max(counts) - min(counts) <= 1   # even spread


def test_probe_mode_validation():
    mc = _controller()
    with pytest.raises(ValueError):
        LatencyProbe(mc, bank=0, mode="chaotic")


def test_probe_observes_rfm_blocking():
    mc = _controller()
    probe = LatencyProbe(mc, bank=1, mode="same_row")
    probe.start()
    mc.engine.schedule(2000.0, lambda: mc.request_rfm(RfmProvenance.TB))
    mc.engine.run(until=6000.0)
    probe.stop()
    assert max(probe.result.latencies) >= mc.config.timing.tRFMab
    assert probe.result.spikes(250.0)


def test_hammer_puts_exact_activations_on_target():
    mc = _controller()
    sender = RowHammerSender(mc, bank=0)
    done = []
    sender.hammer(row=5, target_acts=20, decoy_row=6, done=lambda: done.append(1))
    mc.engine.run(until=1_000_000)
    assert done == [1]
    assert mc.channel.bank(0).counter(5) == 20
    # The alternation ends on the target, so the decoy sits one behind;
    # crucially it never exceeds the target (no decoy-triggered Alert).
    assert mc.channel.bank(0).counter(6) == 19


def test_hammer_closes_off_target_row():
    mc = _controller()
    sender = RowHammerSender(mc, bank=0)
    sender.hammer(row=5, target_acts=4, decoy_row=6, close_row=99)
    mc.engine.run(until=1_000_000)
    assert mc.channel.bank(0).open_row == 99
    assert mc.channel.bank(0).counter(99) == 1


class TestSpikeClassifier:
    TIMING = ddr5_8000b().timing

    def test_below_threshold_is_not_a_spike(self):
        assert not is_rfm_spike(100.0, 1000.0, self.TIMING)

    def test_off_grid_spike_is_rfm(self):
        assert is_rfm_spike(400.0, 2000.0, self.TIMING)

    def test_on_grid_refresh_sized_spike_dismissed(self):
        done = self.TIMING.tREFI + self.TIMING.tRFC + 30.0
        assert not is_rfm_spike(self.TIMING.tRFC + 40.0, done, self.TIMING)

    def test_on_grid_oversized_spike_is_rfm(self):
        # RFM colliding with refresh: additive stall, still detected.
        done = self.TIMING.tREFI + self.TIMING.tRFC + 30.0
        combined = self.TIMING.tRFC + self.TIMING.tRFMab + 50.0
        assert is_rfm_spike(combined, done, self.TIMING)
