"""End-to-end tests of the PRACLeak covert channels."""


import pytest

from repro.attacks.covert import (
    ActivationCountChannel,
    ActivityChannel,
    CovertChannelResult,
)


class TestActivityChannel:
    def test_transmits_bits_without_error(self):
        message = [1, 0, 1, 1, 0, 0, 1, 0]
        result = ActivityChannel(nbo=256, message=message).run()
        assert result.received_bits == message
        assert result.error_rate == 0.0

    def test_all_zero_message_stays_silent(self):
        result = ActivityChannel(nbo=256, message=[0, 0, 0, 0]).run()
        assert result.received_bits == [0, 0, 0, 0]

    def test_all_one_message(self):
        result = ActivityChannel(nbo=256, message=[1, 1, 1, 1]).run()
        assert result.received_bits == [1, 1, 1, 1]

    def test_bitrate_decreases_with_nbo(self):
        fast = ActivityChannel(nbo=256, message=[1, 0]).run()
        slow = ActivityChannel(nbo=1024, message=[1, 0]).run()
        assert slow.bitrate_kbps < fast.bitrate_kbps
        assert slow.period_us > 3 * fast.period_us

    def test_one_bit_per_symbol(self):
        result = ActivityChannel(nbo=256, message=[1]).run()
        assert result.bits_per_symbol == 1


class TestActivationCountChannel:
    def test_values_recovered_exactly(self):
        values = [0, 17, 100, 255, 42]
        channel = ActivationCountChannel(nbo=256, values=values)
        result = channel.run()
        assert result.error_rate == 0.0
        assert _decode_values(result) == values

    def test_boundary_values(self):
        values = [0, 1, 254, 255]
        result = ActivationCountChannel(nbo=256, values=values).run()
        assert _decode_values(result) == values

    def test_log2_nbo_bits_per_symbol(self):
        result = ActivationCountChannel(nbo=512, values=[5]).run()
        assert result.bits_per_symbol == 9

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            ActivationCountChannel(nbo=256, values=[256])

    def test_higher_bitrate_than_activity_channel(self):
        """The paper's headline: count channel beats activity channel."""
        activity = ActivityChannel(nbo=256, message=[1, 0, 1, 0]).run()
        count = ActivationCountChannel(nbo=256, values=[10, 200, 37, 99]).run()
        assert count.bitrate_kbps > 2 * activity.bitrate_kbps


def _decode_values(result: CovertChannelResult):
    bits = result.received_bits
    bps = result.bits_per_symbol
    out = []
    for i in range(result.symbols):
        chunk = bits[i * bps: (i + 1) * bps]
        out.append(sum(b << (bps - 1 - j) for j, b in enumerate(chunk)))
    return out


def test_error_rate_counts_length_mismatch():
    result = CovertChannelResult(
        sent_bits=[1, 0, 1],
        received_bits=[1, 0],
        window_ns=1.0,
        elapsed_ns=3.0,
        symbols=3,
        bits_per_symbol=1,
    )
    assert result.error_rate == pytest.approx(1 / 3)
