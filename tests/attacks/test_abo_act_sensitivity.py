"""Sensitivity to the ABO_ACT grace parameter (paper Table 1).

The attack configs default to ABO_ACT = 0 for clarity, but the JEDEC
spec allows up to 3 grace activations between the Alert and the RFM.
These tests confirm the side channel works unmodified at the spec
maximum: a dependent-chain prober cannot complete 3 activations within
the 180 ns tABOACT deadline, so the RFM still lands immediately after
the triggering probe.
"""

import pytest

from repro.attacks.side_channel import AesSideChannelAttack


@pytest.mark.parametrize("abo_act", [0, 3])
def test_side_channel_recovers_with_grace_acts(abo_act):
    key = bytes([0x90]) + bytes(15)
    attack = AesSideChannelAttack(key, nbo=256, encryptions=200, abo_act=abo_act)
    result = attack.run_single(0, 0)
    assert result.success, f"failed at ABO_ACT={abo_act}"
    assert result.recovered_nibble == 0x9


def test_grace_acts_counted_by_protocol():
    """The device-side grace countdown works as specified."""
    from repro.dram.config import small_test_config
    from repro.dram.rank import Channel
    from repro.prac.abo import AboProtocol

    config = small_test_config(nbo=2).with_prac(nbo=2, abo_act=3)
    channel = Channel(config)
    abo = AboProtocol(config, channel)
    bank = channel.bank(0)
    bank.activate(1, 0.0)
    bank.activate(1, 0.0)           # Alert
    assert abo.alert_pending and not abo.must_mitigate_now
    for _ in range(3):
        bank.activate(2, 0.0)       # grace activations
    assert abo.must_mitigate_now


def test_deadline_bounds_rfm_delay():
    """End to end: with ABO_ACT=3 and a slow requester, the RFM is
    issued by the tABOACT deadline rather than waiting for 3 ACTs."""
    from repro.attacks.probes import bank_address
    from repro.controller.controller import MemoryController
    from repro.controller.request import MemRequest
    from repro.core.engine import Engine
    from repro.dram.config import small_test_config
    from repro.mitigations.abo_only import AboOnlyPolicy

    nbo = 8
    config = small_test_config(nbo=nbo).with_prac(nbo=nbo, abo_act=3)
    mc = MemoryController(
        Engine(), config, policy=AboOnlyPolicy(), enable_refresh=False
    )
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 2 * nbo:
            return
        row = 10 if state["n"] % 2 else 11
        state["n"] += 1
        # Slow requester: one access every 500 ns.
        mc.engine.schedule_after(
            500.0,
            lambda: mc.enqueue(
                MemRequest(phys_addr=bank_address(mc, 0, row), on_complete=issue)
            ),
        )

    issue()
    mc.engine.run(until=100_000)
    assert mc.abo.alert_count >= 1
    records = mc.stats.rfm_records
    assert records, "deadline should force the RFM without 3 more ACTs"
