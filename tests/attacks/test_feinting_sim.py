"""Executable-Feinting validation: simulator vs analytical worst case."""

import pytest

from repro.analysis.safety import SafetyMonitor
from repro.attacks.feinting_sim import FeintingAttack


@pytest.mark.parametrize("pool_size", [4, 8, 16])
def test_measured_peak_never_exceeds_analytical_bound(pool_size):
    result = FeintingAttack(pool_size=pool_size).run()
    assert result.within_bound, (
        f"simulated Feinting beat the analytical bound: "
        f"{result.target_peak} > {result.analytical_tmax}"
    )


def test_tprac_prevents_alerts_under_feinting():
    result = FeintingAttack(pool_size=16, nbo=200).run()
    assert result.defense_held
    assert result.target_peak < 200


def test_mitigations_scale_with_pool():
    small = FeintingAttack(pool_size=8).run()
    large = FeintingAttack(pool_size=32).run()
    assert large.mitigations > small.mitigations
    assert large.rounds_executed > small.rounds_executed


def test_longer_window_allows_higher_peak():
    tight = FeintingAttack(pool_size=16, tb_window=1200.0).run()
    loose = FeintingAttack(pool_size=16, tb_window=4800.0).run()
    assert loose.target_peak > tight.target_peak


def test_safety_monitor_integration():
    from repro.controller.controller import MemoryController
    from repro.controller.request import MemRequest
    from repro.core.engine import Engine
    from repro.dram.config import small_test_config
    from repro.mitigations.tprac import TpracPolicy
    from repro.attacks.probes import bank_address

    nbo = 64
    config = small_test_config(nbo=nbo).with_prac(nbo=nbo, abo_act=0)
    mc = MemoryController(
        Engine(), config, policy=TpracPolicy(tb_window=1500.0),
        enable_refresh=False,
    )
    monitor = SafetyMonitor(mc.channel, threshold=nbo)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 500:
            return
        row = state["n"] % 2 + 10
        state["n"] += 1
        mc.enqueue(MemRequest(phys_addr=bank_address(mc, 0, row), on_complete=issue))

    issue()
    mc.engine.run(until=100_000_000)
    assert monitor.safe, monitor.report()
    assert monitor.peak_count > 0
    assert monitor.margin > 0
    assert "SAFE" in monitor.report()


def test_safety_monitor_flags_undefended_hammering():
    from repro.controller.controller import MemoryController
    from repro.controller.request import MemRequest
    from repro.core.engine import Engine
    from repro.dram.config import small_test_config
    from repro.mitigations.base import NoMitigationPolicy
    from repro.attacks.probes import bank_address

    config = small_test_config(nbo=32)
    mc = MemoryController(
        Engine(), config, policy=NoMitigationPolicy(),
        enable_abo=False, enable_refresh=False,
    )
    monitor = SafetyMonitor(mc.channel, threshold=32)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 80:
            return
        row = 10 if state["n"] % 2 else 11
        state["n"] += 1
        mc.enqueue(MemRequest(phys_addr=bank_address(mc, 0, row), on_complete=issue))

    issue()
    mc.engine.run(until=100_000_000)
    assert not monitor.safe
    assert monitor.violations[0].count == 32
    assert "VIOLATIONS" in monitor.report()


def test_monitor_threshold_validated():
    from repro.dram.rank import Channel
    from repro.dram.config import small_test_config

    with pytest.raises(ValueError):
        SafetyMonitor(Channel(small_test_config()), threshold=0)
