"""Fault plans: parsing, matching, the env-gated hooks."""

import json

import pytest

from repro import faults
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    InjectedBug,
    InjectedFault,
    active_plan,
    clear_plan_cache,
    fire,
    mangle_output,
)

pytestmark = pytest.mark.smoke


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


# ----------------------------------------------------------------------
# Parsing & validation
# ----------------------------------------------------------------------
def test_plan_roundtrips_through_dict():
    plan = FaultPlan.from_dict(
        {
            "rules": [
                {"action": "raise", "match": "*:0", "attempts": [0, 1]},
                {"action": "hang", "match": "*:2", "seconds": 60},
                {"action": "corrupt", "match": "scenario-*.json", "mode": "garble"},
            ]
        }
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_loads_accepts_inline_json_and_file_paths(tmp_path):
    spec = {"rules": [{"action": "delay", "match": "a", "seconds": 0.0}]}
    inline = FaultPlan.loads(json.dumps(spec))
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(spec))
    assert FaultPlan.loads(str(path)) == inline
    assert inline.rules[0].action == "delay"


def test_single_attempt_int_is_coerced_to_tuple():
    rule = FaultRule.from_dict({"action": "raise", "attempts": 1})
    assert rule.attempts == (1,)


@pytest.mark.parametrize(
    "spec",
    [
        {"action": "nuke"},
        {"action": "raise", "typo": True},
        {"action": "raise", "attempts": [-1]},
        {"action": "hang", "seconds": -5},
        {"action": "corrupt", "mode": "scribble"},
    ],
)
def test_invalid_rules_raise(spec):
    with pytest.raises(ValueError):
        FaultRule.from_dict(spec)


def test_invalid_plan_json_raises():
    with pytest.raises(ValueError, match="not valid JSON"):
        FaultPlan.loads("{nope")
    with pytest.raises(ValueError, match="unknown fault plan keys"):
        FaultPlan.from_dict({"rule": []})


# ----------------------------------------------------------------------
# Matching
# ----------------------------------------------------------------------
def test_worker_rules_match_task_id_and_attempt():
    plan = FaultPlan.loads(
        '{"rules": [{"action": "raise", "match": "*:0", "attempts": [1]}]}'
    )
    assert plan.worker_rules("abc:0", 1)
    assert not plan.worker_rules("abc:0", 0)  # wrong attempt
    assert not plan.worker_rules("abc:1", 1)  # wrong id
    assert not plan.file_rules("abc:0")  # raise is not a file action


# ----------------------------------------------------------------------
# Env gating
# ----------------------------------------------------------------------
def test_active_plan_is_none_without_env():
    assert active_plan() is None
    fire("anything", 0)  # no-op, must not raise


def test_active_plan_reads_and_caches_env(monkeypatch):
    spec = '{"rules": [{"action": "raise", "match": "x", "attempts": [0]}]}'
    monkeypatch.setenv(FAULT_PLAN_ENV, spec)
    clear_plan_cache()
    plan = active_plan()
    assert plan is not None and active_plan() is plan  # cached
    assert faults.FAULT_PLAN_ENV == FAULT_PLAN_ENV


# ----------------------------------------------------------------------
# fire()
# ----------------------------------------------------------------------
def test_fire_raises_transient_or_deterministic(monkeypatch):
    monkeypatch.setenv(
        FAULT_PLAN_ENV,
        json.dumps(
            {
                "rules": [
                    {"action": "raise", "match": "flaky", "attempts": [0]},
                    {
                        "action": "raise",
                        "match": "buggy",
                        "attempts": [0],
                        "transient": False,
                    },
                ]
            }
        ),
    )
    clear_plan_cache()
    with pytest.raises(InjectedFault):
        fire("flaky", 0)
    with pytest.raises(InjectedBug):
        fire("buggy", 0)
    fire("flaky", 1)  # attempt 1 unmatched: no-op
    fire("other", 0)  # id unmatched: no-op


def test_fire_delay_sleeps_then_returns(monkeypatch):
    monkeypatch.setenv(
        FAULT_PLAN_ENV,
        '{"rules": [{"action": "delay", "match": "a", "attempts": [0],'
        ' "seconds": 0.0}]}',
    )
    clear_plan_cache()
    fire("a", 0)  # returns normally


# ----------------------------------------------------------------------
# mangle_output()
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "mode,check",
    [
        ("truncate", lambda out, src: len(out) == len(src) // 2),
        ("garble", lambda out, src: out.endswith("#corrupt#")),
        ("zero", lambda out, src: out == ""),
    ],
)
def test_mangle_output_modes(monkeypatch, mode, check):
    monkeypatch.setenv(
        FAULT_PLAN_ENV,
        json.dumps(
            {"rules": [{"action": "corrupt", "match": "*.json", "mode": mode}]}
        ),
    )
    clear_plan_cache()
    source = '{"a": 1, "b": [2, 3]}\n'
    assert check(mangle_output("result.json", source), source)
    assert mangle_output("trace.jsonl", source) == source  # unmatched


def test_mangled_json_fails_checksum_or_parse(monkeypatch, tmp_path):
    from repro.analysis.storage import (
        CorruptResultError,
        atomic_write_json,
        attach_checksum,
        load_checked_json,
    )

    monkeypatch.setenv(
        FAULT_PLAN_ENV,
        '{"rules": [{"action": "corrupt", "match": "doomed.json"}]}',
    )
    clear_plan_cache()
    doc = attach_checksum({"metrics": {"x": 1.0}})
    path = atomic_write_json(tmp_path / "doomed.json", doc)
    with pytest.raises(CorruptResultError):
        load_checked_json(path)
