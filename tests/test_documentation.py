"""Documentation coverage: every public module/class/function is documented.

Walks the installed ``repro`` package and asserts that each module, and
each public class and function defined in it, carries a docstring.
This keeps the "doc comments on every public item" deliverable honest
as the code base grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # Overrides inherit the documented contract of their
                # base-class interface (standard Python practice).
                if any(
                    getattr(base, method_name, None) is not None
                    and getattr(base, method_name).__doc__
                    for base in member.__mro__[1:]
                ):
                    continue
                undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public members: {undocumented}"
    )


def test_package_exports_resolve():
    """Every name in each package's __all__ actually exists."""
    for module in MODULES:
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__: {name}"
