"""Integration-level tests for the memory controller."""

import pytest

from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.address import DramAddress
from repro.dram.commands import RfmProvenance
from repro.dram.config import small_test_config
from repro.mitigations.abo_only import AboOnlyPolicy
from repro.mitigations.base import NoMitigationPolicy


def _controller(engine=None, config=None, **kwargs):
    engine = engine or Engine()
    config = config or small_test_config()
    kwargs.setdefault("policy", NoMitigationPolicy())
    kwargs.setdefault("enable_refresh", False)
    return MemoryController(engine, config, **kwargs)


def _run_request(controller, phys_addr, is_write=False):
    done = []
    controller.enqueue(
        MemRequest(
            phys_addr=phys_addr,
            is_write=is_write,
            on_complete=lambda r: done.append(r),
        )
    )
    controller.engine.run(until=controller.engine.now + 1_000_000)
    assert len(done) == 1
    return done[0]


def test_request_completion_and_latency():
    mc = _controller()
    request = _run_request(mc, 0)
    timing = mc.config.timing
    expected = timing.tRCD + timing.tCL + timing.tBL
    assert request.latency == pytest.approx(expected)


def test_row_hit_is_faster_than_miss():
    mc = _controller()
    first = _run_request(mc, 0)
    second = _run_request(mc, 64)   # same MOP row, next column
    assert second.latency < first.latency


def test_row_conflict_pays_precharge():
    mc = _controller()
    _run_request(mc, 0)
    conflict_addr = mc.mapping.encode(DramAddress(0, 0, 0, 0, 5, 0))
    conflict = _run_request(mc, conflict_addr)
    assert conflict.latency > _run_request(mc, conflict_addr + 64).latency
    assert mc.stats.row_conflicts >= 1


def test_closed_page_precharges_after_access():
    mc = _controller(page_policy="closed")
    _run_request(mc, 0)
    assert mc.channel.bank(0).open_row is None


def test_bad_page_policy_rejected():
    with pytest.raises(ValueError):
        _controller(page_policy="adaptive")


def test_activation_counters_increment_via_requests():
    mc = _controller()
    row3 = mc.mapping.encode(DramAddress(0, 0, 0, 0, 3, 0))
    row4 = mc.mapping.encode(DramAddress(0, 0, 0, 0, 4, 0))
    for _ in range(3):
        _run_request(mc, row3)
        _run_request(mc, row4)
    assert mc.channel.bank(0).counter(3) == 3
    assert mc.channel.bank(0).counter(4) == 3


def test_abo_triggers_rfm_and_mitigates():
    config = small_test_config(nbo=8).with_prac(nbo=8, abo_act=0)
    mc = _controller(config=config, policy=AboOnlyPolicy())
    a = bank_address(mc, 0, 10)
    b = bank_address(mc, 0, 11)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 40:
            return
        state["n"] += 1
        mc.enqueue(MemRequest(phys_addr=a if state["n"] % 2 else b, on_complete=issue))

    issue()
    mc.engine.run(until=50_000_000)
    assert mc.abo.alert_count >= 1
    assert mc.stats.rfm_count(RfmProvenance.ABO) >= 1
    # The alerted row was mitigated: its counter dropped back.
    assert mc.channel.bank(0).counter(10) < 8


def test_rfm_blocks_subsequent_requests():
    mc = _controller()
    mc.request_rfm(RfmProvenance.TB)
    request = _run_request(mc, 0)
    # Issued behind the RFM: latency includes the tRFMab block.
    assert request.latency >= mc.config.timing.tRFMab


def test_rfm_burst_count_respected():
    mc = _controller()
    mc.request_rfm(RfmProvenance.TB, count=3)
    mc.engine.run(until=10_000)
    records = mc.stats.rfm_records
    assert len(records) == 3
    gaps = [b.time - a.time for a, b in zip(records, records[1:])]
    assert all(g == pytest.approx(mc.config.timing.tRFMab) for g in gaps)


def test_refresh_window_counter_reset():
    config = small_test_config()
    engine = Engine()
    mc = MemoryController(
        engine, config, policy=NoMitigationPolicy(), enable_refresh=True
    )
    row = bank_address(mc, 0, 1)
    _run_request(mc, row)
    assert mc.channel.bank(0).counter(1) == 1
    engine.run(until=config.timing.tREFW + 1000)
    assert mc.channel.bank(0).counter(1) == 0


def test_no_reset_policy_preserves_counters():
    config = small_test_config().with_prac(reset_on_refresh=False)
    engine = Engine()
    mc = MemoryController(
        engine, config, policy=NoMitigationPolicy(), enable_refresh=True
    )
    row = bank_address(mc, 0, 1)
    _run_request(mc, row)
    engine.run(until=config.timing.tREFW + 1000)
    assert mc.channel.bank(0).counter(1) == 1


def test_enable_abo_false_suppresses_rfms():
    config = small_test_config(nbo=4).with_prac(nbo=4, abo_act=0)
    mc = _controller(config=config, policy=AboOnlyPolicy(), enable_abo=False)
    a = bank_address(mc, 0, 10)
    b = bank_address(mc, 0, 11)
    for _ in range(6):
        _run_request(mc, a)
        _run_request(mc, b)
    assert mc.stats.rfm_count() == 0


def test_write_requests_recorded():
    mc = _controller()
    _run_request(mc, 0, is_write=True)
    assert mc.stats.writes == 1
    assert mc.channel.bank(0).stats.writes == 1


def test_banks_progress_in_parallel():
    """Two banks should overlap; same-bank requests serialize."""
    mc = _controller()
    same_bank = [bank_address(mc, 0, r) for r in (1, 2)]
    diff_bank = [bank_address(mc, 0, 1), bank_address(mc, 1, 1)]

    def run_pair(addrs):
        engine = Engine()
        controller = MemoryController(
            engine, small_test_config(), policy=NoMitigationPolicy(),
            enable_refresh=False,
        )
        done = []
        for addr in addrs:
            controller.enqueue(
                MemRequest(phys_addr=addr, on_complete=lambda r: done.append(r))
            )
        engine.run(until=100_000)
        return max(r.done_time for r in done)

    assert run_pair(diff_bank) < run_pair(same_bank)


def test_latency_samples_recorded_when_enabled():
    mc = _controller(record_samples=True)
    _run_request(mc, 0)
    assert len(mc.stats.latency_samples) == 1
    sample = mc.stats.latency_samples[0]
    assert sample.bank_id == 0
    assert sample.latency > 0
