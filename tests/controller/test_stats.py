"""Unit tests for controller statistics bookkeeping."""

import pytest

from repro.controller.stats import ControllerStats, LatencySample, RfmRecord
from repro.dram.commands import RfmProvenance


def _sample(latency=100.0, core_id=0, was_hit=False, time=0.0):
    return LatencySample(
        time=time, latency=latency, core_id=core_id, bank_id=0, row=0, was_hit=was_hit
    )


def test_mean_latency():
    stats = ControllerStats()
    stats.record_request(_sample(latency=100.0))
    stats.record_request(_sample(latency=300.0))
    assert stats.mean_latency == 200.0
    assert stats.requests_served == 2


def test_mean_latency_empty_is_zero():
    assert ControllerStats().mean_latency == 0.0


def test_row_hit_rate():
    stats = ControllerStats()
    stats.record_request(_sample(was_hit=True))
    stats.record_request(_sample(was_hit=False))
    assert stats.row_hit_rate == 0.5


def test_rfm_counting_by_provenance():
    stats = ControllerStats()
    stats.record_rfm(RfmRecord(time=0.0, provenance=RfmProvenance.ABO))
    stats.record_rfm(RfmRecord(time=1.0, provenance=RfmProvenance.TB))
    stats.record_rfm(RfmRecord(time=2.0, provenance=RfmProvenance.TB))
    assert stats.rfm_count() == 3
    assert stats.rfm_count(RfmProvenance.TB) == 2
    assert stats.rfm_count(RfmProvenance.ACB) == 0


def test_sample_recording_can_be_disabled():
    stats = ControllerStats(record_samples=False)
    stats.record_request(_sample())
    assert stats.requests_served == 1
    assert stats.latency_samples == []


def test_core_samples_filtering():
    stats = ControllerStats()
    stats.record_request(_sample(core_id=0))
    stats.record_request(_sample(core_id=1))
    stats.record_request(_sample(core_id=1))
    assert len(stats.core_samples(1)) == 2
