"""Unit tests for controller statistics bookkeeping."""


import pytest

from repro.controller.stats import ControllerStats, LatencySample, RfmRecord
from repro.dram.commands import RfmProvenance


def _sample(latency=100.0, core_id=0, was_hit=False, time=0.0):
    return LatencySample(
        time=time, latency=latency, core_id=core_id, bank_id=0, row=0, was_hit=was_hit
    )


def test_mean_latency():
    stats = ControllerStats()
    stats.record_request(_sample(latency=100.0))
    stats.record_request(_sample(latency=300.0))
    assert stats.mean_latency == 200.0
    assert stats.requests_served == 2


def test_mean_latency_empty_is_zero():
    assert ControllerStats().mean_latency == 0.0


def test_row_hit_rate():
    stats = ControllerStats()
    stats.record_request(_sample(was_hit=True))
    stats.record_request(_sample(was_hit=False))
    assert stats.row_hit_rate == 0.5


def test_rfm_counting_by_provenance():
    stats = ControllerStats()
    stats.record_rfm(RfmRecord(time=0.0, provenance=RfmProvenance.ABO))
    stats.record_rfm(RfmRecord(time=1.0, provenance=RfmProvenance.TB))
    stats.record_rfm(RfmRecord(time=2.0, provenance=RfmProvenance.TB))
    assert stats.rfm_count() == 3
    assert stats.rfm_count(RfmProvenance.TB) == 2
    assert stats.rfm_count(RfmProvenance.ACB) == 0


def test_sample_recording_can_be_disabled():
    stats = ControllerStats(record_samples=False)
    stats.record_request(_sample())
    assert stats.requests_served == 1
    assert stats.latency_samples == []


def test_core_samples_filtering():
    stats = ControllerStats()
    stats.record_request(_sample(core_id=0))
    stats.record_request(_sample(core_id=1))
    stats.record_request(_sample(core_id=1))
    assert len(stats.core_samples(1)) == 2


def test_rfm_counts_are_maintained_incrementally():
    stats = ControllerStats()
    stats.record_rfm(RfmRecord(time=0.0, provenance=RfmProvenance.ABO,
                               mitigated_rows={0: 5, 1: 9}))
    stats.record_rfm(RfmRecord(time=1.0, provenance=RfmProvenance.TB))
    assert stats.rfm_counts[RfmProvenance.ABO] == 1
    assert stats.rfm_counts[RfmProvenance.TB] == 1
    assert stats.mitigated_row_total == 2


def test_per_core_running_counters_on_the_default_path():
    stats = ControllerStats(record_samples=False)
    stats.record_completion(10.0, 100.0, core_id=0, bank_id=0, row=0, was_hit=False)
    stats.record_completion(20.0, 300.0, core_id=0, bank_id=1, row=2, was_hit=True)
    stats.record_completion(30.0, 50.0, core_id=1, bank_id=0, row=0, was_hit=False)
    assert stats.core_requests == {0: 2, 1: 1}
    assert stats.core_mean_latency(0) == 200.0
    assert stats.core_mean_latency(1) == 50.0
    assert stats.core_mean_latency(9) == 0.0
    assert stats.latency_samples == []        # no samples allocated
    assert stats.core_samples(0) == []


def test_core_samples_index_when_recording_enabled():
    stats = ControllerStats(record_samples=True)
    stats.record_request(_sample(core_id=2, latency=80.0))
    stats.record_request(_sample(core_id=3, latency=90.0))
    stats.record_request(_sample(core_id=2, latency=100.0))
    assert [s.latency for s in stats.core_samples(2)] == [80.0, 100.0]
    assert stats.core_samples(2) == [s for s in stats.latency_samples if s.core_id == 2]


def test_read_latency_histogram_counts_reads_only():
    stats = ControllerStats(record_samples=False)
    stats.record_completion(1.0, 30.0, core_id=0, bank_id=0, row=0,
                            was_hit=True)
    stats.record_completion(2.0, 70.0, core_id=0, bank_id=0, row=0,
                            was_hit=False)
    stats.record_completion(3.0, 500.0, core_id=0, bank_id=0, row=0,
                            was_hit=False, is_write=True)
    counts = stats.read_latency_bucket_counts
    assert sum(counts) == 2                      # the write is excluded
    assert counts[1] == 1                        # 30.0 in (20, 40]
    assert counts[3] == 1                        # 70.0 in (60, 80]
    assert stats.read_latency_max == 70.0


def test_read_latency_percentiles_interpolate():
    stats = ControllerStats(record_samples=False)
    for _ in range(10):
        stats.record_completion(0.0, 30.0, core_id=0, bank_id=0, row=0,
                                was_hit=False)
    # all mass in the (20, 40] bucket: linear interpolation inside it
    assert stats.read_latency_percentile(0.5) == pytest.approx(30.0)
    pcts = stats.latency_percentiles()
    assert set(pcts) == {"p50", "p95", "p99"}
    assert 20.0 < pcts["p50"] < pcts["p95"] < pcts["p99"] <= 40.0


def test_read_latency_overflow_bucket_clamps_to_last_edge():
    stats = ControllerStats(record_samples=False)
    stats.record_completion(0.0, 50_000.0, core_id=0, bank_id=0, row=0,
                            was_hit=False)
    assert stats.read_latency_percentile(0.99) == 9600.0
    assert stats.read_latency_max == 50_000.0


def test_merged_sums_histogram_buckets_and_maxes():
    a = ControllerStats(record_samples=False)
    b = ControllerStats(record_samples=False)
    a.record_completion(0.0, 30.0, core_id=0, bank_id=0, row=0, was_hit=False)
    b.record_completion(0.0, 30.0, core_id=0, bank_id=0, row=0, was_hit=False)
    b.record_completion(0.0, 700.0, core_id=1, bank_id=0, row=0, was_hit=False)
    merged = ControllerStats.merged([a, b])
    assert merged.read_latency_bucket_counts[1] == 2
    assert sum(merged.read_latency_bucket_counts) == 3
    assert merged.read_latency_max == 700.0
    # a single part is returned as-is (live object, no copy)
    assert ControllerStats.merged([a]) is a
