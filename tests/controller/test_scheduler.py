"""Unit tests for the FR-FCFS scheduler."""

import pytest

from repro.controller.request import MemRequest
from repro.controller.scheduler import FrFcfsScheduler
from repro.dram.address import DramAddress
from repro.dram.bank import Bank
from repro.dram.config import small_test_config


def _req(row, arrive=0.0):
    request = MemRequest(phys_addr=0, arrive_time=arrive)
    request.addr = DramAddress(0, 0, 0, 0, row, 0)
    return request


@pytest.fixture
def bank():
    return Bank(small_test_config(), bank_id=0)


def test_fifo_when_no_open_row(bank):
    sched = FrFcfsScheduler(num_banks=1)
    first, second = _req(1), _req(2)
    sched.enqueue(first, 0)
    sched.enqueue(second, 0)
    assert sched.pick(0, bank) is first
    assert sched.pick(0, bank) is second


def test_row_hit_preferred_over_older_conflict(bank):
    sched = FrFcfsScheduler(num_banks=1)
    bank.activate(5, 0.0)
    older_conflict, hit = _req(1), _req(5)
    sched.enqueue(older_conflict, 0)
    sched.enqueue(hit, 0)
    assert sched.pick(0, bank) is hit


def test_hit_cap_forces_oldest_after_cap(bank):
    sched = FrFcfsScheduler(num_banks=1, cap=2)
    bank.activate(5, 0.0)
    conflict = _req(1)
    sched.enqueue(conflict, 0)
    for _ in range(2):
        sched.enqueue(_req(5), 0)
        picked = sched.pick(0, bank)
        assert picked.addr.row == 5
    # Cap reached: the next pick must serve the starving conflict.
    sched.enqueue(_req(5), 0)
    assert sched.pick(0, bank) is conflict


def test_head_hit_does_not_consume_cap(bank):
    sched = FrFcfsScheduler(num_banks=1, cap=1)
    bank.activate(5, 0.0)
    for _ in range(5):
        sched.enqueue(_req(5), 0)
        assert sched.pick(0, bank).addr.row == 5


def test_pick_empty_returns_none(bank):
    sched = FrFcfsScheduler(num_banks=1)
    assert sched.pick(0, bank) is None


def test_pending_counts(bank):
    sched = FrFcfsScheduler(num_banks=2)
    sched.enqueue(_req(1), 0)
    sched.enqueue(_req(1), 1)
    sched.enqueue(_req(2), 1)
    assert sched.pending() == 3
    assert sched.pending(1) == 2
    assert list(sched.banks_with_work()) == [0, 1]


def test_enqueue_requires_decoded_request():
    sched = FrFcfsScheduler(num_banks=1)
    with pytest.raises(ValueError):
        sched.enqueue(MemRequest(phys_addr=0), 0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        FrFcfsScheduler(num_banks=0)
    with pytest.raises(ValueError):
        FrFcfsScheduler(num_banks=1, cap=0)


def test_banks_with_work_stays_sorted_through_churn(bank):
    sched = FrFcfsScheduler(num_banks=8)
    for bank_id in (5, 1, 7, 3):
        sched.enqueue(_req(row=0), bank_id)
    assert list(sched.banks_with_work()) == [1, 3, 5, 7]
    sched.pick(3, bank)  # empties bank 3
    assert list(sched.banks_with_work()) == [1, 5, 7]
    sched.enqueue(_req(row=1), 0)
    assert list(sched.banks_with_work()) == [0, 1, 5, 7]
