"""Unit tests for the registered request schedulers."""

import pytest

from repro.controller.request import MemRequest
from repro.controller.scheduler import (
    SCHEDULERS,
    FcfsScheduler,
    FrFcfsCapScheduler,
    FrFcfsScheduler,
    make_scheduler,
)
from repro.dram.address import DramAddress
from repro.dram.bank import Bank
from repro.dram.config import small_test_config


def _req(row, arrive=0.0):
    request = MemRequest(phys_addr=0, arrive_time=arrive)
    request.addr = DramAddress(0, 0, 0, 0, row, 0)
    return request


@pytest.fixture
def bank():
    return Bank(small_test_config(), bank_id=0)


def test_fifo_when_no_open_row(bank):
    sched = FrFcfsScheduler(num_banks=1)
    first, second = _req(1), _req(2)
    sched.enqueue(first, 0)
    sched.enqueue(second, 0)
    assert sched.pick(0, bank) is first
    assert sched.pick(0, bank) is second


def test_row_hit_preferred_over_older_conflict(bank):
    sched = FrFcfsScheduler(num_banks=1)
    bank.activate(5, 0.0)
    older_conflict, hit = _req(1), _req(5)
    sched.enqueue(older_conflict, 0)
    sched.enqueue(hit, 0)
    assert sched.pick(0, bank) is hit


def test_hit_cap_forces_oldest_after_cap(bank):
    sched = FrFcfsScheduler(num_banks=1, cap=2)
    bank.activate(5, 0.0)
    conflict = _req(1)
    sched.enqueue(conflict, 0)
    for _ in range(2):
        sched.enqueue(_req(5), 0)
        picked = sched.pick(0, bank)
        assert picked.addr.row == 5
    # Cap reached: the next pick must serve the starving conflict.
    sched.enqueue(_req(5), 0)
    assert sched.pick(0, bank) is conflict


def test_head_hit_does_not_consume_cap(bank):
    sched = FrFcfsScheduler(num_banks=1, cap=1)
    bank.activate(5, 0.0)
    for _ in range(5):
        sched.enqueue(_req(5), 0)
        assert sched.pick(0, bank).addr.row == 5


def test_pick_empty_returns_none(bank):
    sched = FrFcfsScheduler(num_banks=1)
    assert sched.pick(0, bank) is None


def test_pending_counts(bank):
    sched = FrFcfsScheduler(num_banks=2)
    sched.enqueue(_req(1), 0)
    sched.enqueue(_req(1), 1)
    sched.enqueue(_req(2), 1)
    assert sched.pending() == 3
    assert sched.pending(1) == 2
    assert list(sched.banks_with_work()) == [0, 1]


def test_enqueue_requires_decoded_request():
    sched = FrFcfsScheduler(num_banks=1)
    with pytest.raises(ValueError):
        sched.enqueue(MemRequest(phys_addr=0), 0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        FrFcfsScheduler(num_banks=0)
    with pytest.raises(ValueError):
        FrFcfsScheduler(num_banks=1, cap=0)


def test_banks_with_work_stays_sorted_through_churn(bank):
    sched = FrFcfsScheduler(num_banks=8)
    for bank_id in (5, 1, 7, 3):
        sched.enqueue(_req(row=0), bank_id)
    assert list(sched.banks_with_work()) == [1, 3, 5, 7]
    sched.pick(3, bank)  # empties bank 3
    assert list(sched.banks_with_work()) == [1, 5, 7]
    sched.enqueue(_req(row=1), 0)
    assert list(sched.banks_with_work()) == [0, 1, 5, 7]


# ----------------------------------------------------------------------
# The scheduler registry
# ----------------------------------------------------------------------
def test_registry_names_and_factories():
    assert SCHEDULERS.available() == ["fcfs", "fr_fcfs", "fr_fcfs_cap"]
    assert isinstance(make_scheduler("fr_fcfs", num_banks=1), FrFcfsScheduler)
    assert isinstance(make_scheduler("fcfs", num_banks=1), FcfsScheduler)
    assert isinstance(
        make_scheduler("fr_fcfs_cap", num_banks=1), FrFcfsCapScheduler
    )


def test_registry_unknown_name_lists_field_and_names():
    with pytest.raises(ValueError) as excinfo:
        make_scheduler("round_robin", num_banks=1)
    message = str(excinfo.value)
    assert "'scheduler'" in message          # the config field
    assert "fr_fcfs" in message and "fcfs" in message


def test_registry_params_forwarded():
    assert make_scheduler("fr_fcfs", num_banks=1, cap=7).cap == 7
    assert make_scheduler("fr_fcfs_cap", num_banks=1, batch=3).batch == 3


# ----------------------------------------------------------------------
# FCFS: strict arrival order
# ----------------------------------------------------------------------
def test_fcfs_ignores_row_hits(bank):
    sched = FcfsScheduler(num_banks=1)
    bank.activate(5, 0.0)
    older_conflict, hit = _req(1), _req(5)
    sched.enqueue(older_conflict, 0)
    sched.enqueue(hit, 0)
    # Unlike FR-FCFS, age always wins — the queued hit cannot bypass.
    assert sched.pick(0, bank) is older_conflict
    assert sched.pick(0, bank) is hit
    assert sched.pick(0, bank) is None


def test_fcfs_bookkeeping_matches_base(bank):
    sched = FcfsScheduler(num_banks=4)
    for bank_id in (2, 0):
        sched.enqueue(_req(0), bank_id)
    assert sched.pending() == 2
    assert list(sched.banks_with_work()) == [0, 2]
    sched.pick(2, bank)
    assert list(sched.banks_with_work()) == [0]
    assert sched.pending() == 1


# ----------------------------------------------------------------------
# Batch-capped FR-FCFS: hits win within the batch only
# ----------------------------------------------------------------------
def test_fr_fcfs_cap_prefers_hit_within_batch(bank):
    sched = FrFcfsCapScheduler(num_banks=1, batch=4)
    bank.activate(5, 0.0)
    conflict, hit = _req(1), _req(5)
    sched.enqueue(conflict, 0)
    sched.enqueue(hit, 0)
    assert sched.pick(0, bank) is hit
    assert sched.pick(0, bank) is conflict


def test_fr_fcfs_cap_hit_outside_batch_cannot_bypass(bank):
    sched = FrFcfsCapScheduler(num_banks=1, batch=2)
    bank.activate(5, 0.0)
    conflicts = [_req(1), _req(2), _req(3)]
    for request in conflicts:
        sched.enqueue(request, 0)
    late_hit = _req(5)
    sched.enqueue(late_hit, 0)
    # Batch = the two oldest conflicts; the hit sits outside it and
    # must wait for the batch to drain (the hard starvation bound).
    assert sched.pick(0, bank) is conflicts[0]
    assert sched.pick(0, bank) is conflicts[1]
    # New batch: the hit is now inside and bypasses the third conflict.
    assert sched.pick(0, bank) is late_hit
    assert sched.pick(0, bank) is conflicts[2]


def test_fr_fcfs_cap_serves_every_request_within_batch_picks(bank):
    # Starvation bound: once a request heads the queue it is served in
    # at most `batch` picks, regardless of how many hits keep arriving.
    batch = 3
    sched = FrFcfsCapScheduler(num_banks=1, batch=batch)
    bank.activate(5, 0.0)
    starving = _req(1)
    sched.enqueue(starving, 0)
    served_starving_after = None
    for pick_count in range(1, 20):
        sched.enqueue(_req(5), 0)   # a fresh hit every round
        if sched.pick(0, bank) is starving:
            served_starving_after = pick_count
            break
    assert served_starving_after is not None
    assert served_starving_after <= batch


def test_fr_fcfs_cap_invalid_batch():
    with pytest.raises(ValueError):
        FrFcfsCapScheduler(num_banks=1, batch=0)
