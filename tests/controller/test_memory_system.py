"""Tests for the multi-channel MemorySystem facade."""

import pytest

from repro.controller.memory_system import MemorySystem
from repro.controller.request import MemRequest
from repro.controller.stats import ControllerStats, RfmRecord
from repro.core.engine import Engine
from repro.dram.commands import RfmProvenance
from repro.dram.config import small_test_config
from repro.mitigations import NoMitigationPolicy, TpracPolicy


def _config(channels=2, **kwargs):
    return small_test_config(**kwargs).with_organization(channels=channels)


def _drain(engine, memory, max_events=200_000):
    fired = 0
    while engine.pending and fired < max_events:
        engine.step()
        fired += 1
    assert memory.idle()


# ----------------------------------------------------------------------
# Construction / policy wiring
# ----------------------------------------------------------------------
def test_single_channel_enqueue_is_the_controller_bound_method():
    engine = Engine()
    memory = MemorySystem(engine, small_test_config(), enable_refresh=False)
    assert memory.channels == 1
    assert memory.enqueue == memory.controllers[0].enqueue
    assert memory.stats is memory.controllers[0].stats


def test_multi_channel_rejects_shared_policy_instance():
    with pytest.raises(ValueError, match="policy_factory"):
        MemorySystem(Engine(), _config(), policy=NoMitigationPolicy())


def test_policy_and_factory_are_mutually_exclusive():
    with pytest.raises(ValueError, match="not both"):
        MemorySystem(
            Engine(),
            small_test_config(),
            policy=NoMitigationPolicy(),
            policy_factory=NoMitigationPolicy,
        )


def test_every_channel_gets_its_own_policy_instance():
    memory = MemorySystem(
        Engine(), _config(channels=4), policy_factory=NoMitigationPolicy,
        enable_refresh=False,
    )
    policies = [controller.policy for controller in memory.controllers]
    assert len(policies) == 4
    assert len({id(p) for p in policies}) == 4
    for controller, policy in zip(memory.controllers, policies):
        assert policy.controller is controller


def test_factory_with_channel_id_parameter_receives_the_channel():
    seen = []

    def factory(channel_id):
        seen.append(channel_id)
        return NoMitigationPolicy()

    MemorySystem(
        Engine(), _config(channels=4), policy_factory=factory,
        enable_refresh=False,
    )
    assert seen == [0, 1, 2, 3]


def test_policy_class_as_factory_is_not_passed_a_channel_id():
    # NoMitigationPolicy.__init__ takes queue_factory; arity-based
    # detection would have smuggled the channel id into it.
    memory = MemorySystem(
        Engine(), _config(channels=2), policy_factory=NoMitigationPolicy,
        enable_refresh=False,
    )
    for controller in memory.controllers:
        assert isinstance(controller.policy, NoMitigationPolicy)


def test_channels_own_disjoint_bank_arrays():
    memory = MemorySystem(Engine(), _config(channels=2), enable_refresh=False)
    banks = list(memory.iter_banks())
    org = memory.config.organization
    assert len(banks) == 2 * org.banks_per_channel
    assert len({id(b) for b in banks}) == len(banks)
    assert len(memory.controllers[0].channel) == org.banks_per_channel


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_requests_route_by_cacheline_interleaving():
    engine = Engine()
    memory = MemorySystem(engine, _config(channels=2), enable_refresh=False)
    lines = 8
    for line in range(lines):
        memory.enqueue(MemRequest(phys_addr=line * 64, core_id=0))
    _drain(engine, memory)
    served = [c.stats.requests_served for c in memory.controllers]
    assert served == [lines // 2, lines // 2]
    assert memory.stats.requests_served == lines


def test_controller_for_matches_routing():
    memory = MemorySystem(Engine(), _config(channels=2), enable_refresh=False)
    assert memory.controller_for(0) is memory.controllers[0]
    assert memory.controller_for(64) is memory.controllers[1]
    assert memory.controller_for(128) is memory.controllers[0]


def test_channel_blocking_does_not_cross_channels():
    """An RFM on channel 0 must not move channel 1's blocking window."""
    engine = Engine()
    memory = MemorySystem(engine, _config(channels=2), enable_refresh=False)
    memory.controllers[0].request_rfm(RfmProvenance.TB)
    _drain(engine, memory)
    assert memory.controllers[0].channel.blocked_until > 0.0
    assert memory.controllers[1].channel.blocked_until == 0.0
    assert memory.rfm_count == 1


def test_per_channel_mitigation_state_is_independent():
    engine = Engine()
    memory = MemorySystem(
        engine,
        _config(channels=2),
        policy_factory=lambda: TpracPolicy(tb_window=1000.0),
        enable_refresh=False,
    )
    # Traffic only on channel 0 (even cache lines).  The TB timers
    # re-arm forever, so run to a horizon instead of queue exhaustion.
    for line in range(0, 64, 2):
        memory.enqueue(MemRequest(phys_addr=line * 64, core_id=0))
    engine.run(until=50_000.0)
    assert memory.controllers[0].stats.requests_served == 32
    assert memory.controllers[1].stats.requests_served == 0


# ----------------------------------------------------------------------
# Merged statistics
# ----------------------------------------------------------------------
def test_merged_stats_counters_sum_and_records_interleave():
    a = ControllerStats(record_samples=True)
    b = ControllerStats(record_samples=True)
    a.record_completion(10.0, 5.0, core_id=0, bank_id=0, row=1, was_hit=True)
    a.record_completion(30.0, 7.0, core_id=1, bank_id=0, row=2, was_hit=False)
    b.record_completion(20.0, 9.0, core_id=0, bank_id=3, row=4, was_hit=False)
    a.record_rfm(RfmRecord(time=25.0, provenance=RfmProvenance.ABO))
    b.record_rfm(RfmRecord(time=15.0, provenance=RfmProvenance.TB))
    merged = ControllerStats.merged([a, b])
    assert merged.requests_served == 3
    assert merged.row_hits == 1
    assert merged.total_latency == 21.0
    assert merged.core_requests == {0: 2, 1: 1}
    assert merged.core_latency_total == {0: 14.0, 1: 7.0}
    assert [s.time for s in merged.latency_samples] == [10.0, 20.0, 30.0]
    assert [r.time for r in merged.rfm_records] == [15.0, 25.0]
    assert merged.rfm_count(RfmProvenance.ABO) == 1
    assert merged.rfm_count(RfmProvenance.TB) == 1
    assert merged.rfm_count() == 2
    assert [s.time for s in merged.core_samples(0)] == [10.0, 20.0]


def test_merged_stats_single_part_returns_live_object():
    stats = ControllerStats()
    assert ControllerStats.merged([stats]) is stats


def test_merged_stats_empty_is_zeroed():
    merged = ControllerStats.merged([])
    assert merged.requests_served == 0
    assert merged.mean_latency == 0.0


def test_facade_merged_view_equals_manual_merge():
    engine = Engine()
    memory = MemorySystem(engine, _config(channels=2), enable_refresh=False)
    for line in range(10):
        memory.enqueue(MemRequest(phys_addr=line * 64, core_id=line % 2))
    _drain(engine, memory)
    merged = memory.stats
    assert merged.requests_served == sum(
        s.requests_served for s in memory.per_channel_stats
    )
    assert merged.reads == 10
