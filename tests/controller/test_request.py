"""Unit tests for MemRequest bookkeeping."""

import pytest

from repro.controller.request import MemRequest


def test_request_ids_are_unique():
    a, b = MemRequest(phys_addr=0), MemRequest(phys_addr=0)
    assert a.req_id != b.req_id


def test_latency_requires_completion():
    request = MemRequest(phys_addr=0, arrive_time=10.0)
    with pytest.raises(RuntimeError):
        _ = request.latency
    request.complete(35.0)
    assert request.latency == 25.0


def test_complete_invokes_callback_once_with_request():
    seen = []
    request = MemRequest(phys_addr=64, on_complete=seen.append)
    request.complete(5.0)
    assert seen == [request]
    assert request.done_time == 5.0


def test_callback_optional():
    MemRequest(phys_addr=0).complete(1.0)   # must not raise


def test_repr_shows_kind_and_address():
    read = repr(MemRequest(phys_addr=0x40))
    write = repr(MemRequest(phys_addr=0x40, is_write=True))
    assert "RD" in read and "WR" in write and "0x40" in read
