"""Equivalence net for the controller's per-bank ready-time cache.

The cache must be invisible: every simulation must produce exactly the
results it would with caching disabled (cache dropped before every
wake).  Running both variants across the mitigation registry exercises
every policy's bank/channel mutation pattern — a policy that mutates
bank timing state without invalidating the cache (the rfmpb
``block_bank`` regression) fails here.
"""

import pytest

from repro.campaigns.runners import build_policy
from repro.campaigns.scenario import Scenario
from repro.cpu.system import System
from repro.mitigations import available
from repro.workloads.synthetic import homogeneous_traces


def _run(mitigation, disable_cache):
    scenario = Scenario(
        attack="perf", mitigation=mitigation, workload="433.milc", nbo=64
    )
    traces = homogeneous_traces("433.milc", cores=2, num_accesses=400, seed=3)
    system = System(traces, policy=build_policy(scenario, seed=3))
    if disable_cache:
        controller = system.controller
        original_wake = controller._wake

        def uncached_wake():
            controller._invalidate_ready_cache()
            original_wake()

        controller._wake_event = None
        controller._wake = uncached_wake  # type: ignore[method-assign]
    result = system.run()
    stats = system.controller.stats
    return (
        result.elapsed_ns,
        result.ipcs,
        stats.total_latency,
        stats.row_hits,
        stats.row_conflicts,
        len(stats.rfm_records),
        system.engine.events_fired,
    )


@pytest.mark.slow
@pytest.mark.parametrize("mitigation", sorted(available()))
def test_ready_cache_is_invisible_for_every_mitigation(mitigation):
    assert _run(mitigation, disable_cache=False) == _run(
        mitigation, disable_cache=True
    )
