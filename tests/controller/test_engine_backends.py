"""Byte-identity and determinism contracts of the accelerated backends.

The engine tier's whole premise is that ``engine=`` changes *how* the
simulation executes, never *what* it computes:

* ``batched`` — every variant (numpy hybrid, numpy forced on via
  ``min_banks=1``, pure-Python fallback) must produce a
  :class:`~repro.cpu.system.SystemResult` equal field-for-field to the
  ``event`` backend's, across channel counts and mitigation designs.
* ``sharded`` — approximate by contract at ``channels > 1`` (epoch-
  quantized completions), so the tests pin what *is* promised instead:
  byte-identical degeneration at one channel, run-twice determinism,
  conservation of the served work, exact per-channel statistics
  plumbing, and loud rejection of the features it cannot honor
  (``until=`` stepping, shared trace/metrics, policy instances).
"""

import pytest

from repro.config import SystemConfig
from repro.experiments.common import DesignPoint, build_system, homogeneous_traces


def run_result(engine, channels=1, params=None, design="tprac", cores=2, requests=220):
    system = build_system(
        DesignPoint(design=design, nrh=1024),
        homogeneous_traces("433.milc", cores=cores, num_accesses=requests, seed=0),
        system=SystemConfig(
            channels=channels, engine=engine, engine_params=params or {}
        ),
    )
    return system.run()


BATCHED_VARIANTS = {
    "hybrid": {},                      # numpy column past the busy threshold
    "numpy-forced": {"min_banks": 1},  # numpy column on every array pass
    "fallback": {"numpy": False},      # pure-Python serve-loop fold
}


# ----------------------------------------------------------------------
# batched: byte-identity to the reference backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(BATCHED_VARIANTS))
@pytest.mark.parametrize("channels", [1, 2])
def test_batched_matches_event_exactly(variant, channels):
    reference = run_result("event", channels=channels)
    batched = run_result("batched", channels=channels, params=BATCHED_VARIANTS[variant])
    assert batched.__dict__ == reference.__dict__


@pytest.mark.parametrize("design", ["none", "abo_acb"])
def test_batched_matches_event_across_designs(design):
    reference = run_result("event", design=design)
    batched = run_result("batched", design=design)
    assert batched.__dict__ == reference.__dict__


def test_batched_fires_fewer_events_for_the_same_work():
    """The folded serve loop elides re-examination wakes: same result,
    strictly fewer events — which is why backend comparisons must use
    wall time over pinned work, not events/sec."""
    def events(engine):
        system = build_system(
            DesignPoint(design="tprac", nrh=1024),
            homogeneous_traces("433.milc", cores=2, num_accesses=220, seed=0),
            system=SystemConfig(engine=engine),
        )
        result = system.run()
        return system.engine.events_fired, result

    event_count, event_result = events("event")
    batched_count, batched_result = events("batched")
    assert batched_result.__dict__ == event_result.__dict__
    assert batched_count < event_count


# ----------------------------------------------------------------------
# sharded: degeneration, determinism, conservation
# ----------------------------------------------------------------------
def test_sharded_single_channel_degenerates_to_event_exactly():
    reference = run_result("event", channels=1)
    sharded = run_result("sharded", channels=1)
    assert sharded.__dict__ == reference.__dict__


def test_sharded_multichannel_is_deterministic():
    first = run_result("sharded", channels=2)
    second = run_result("sharded", channels=2)
    assert first.__dict__ == second.__dict__


def test_sharded_conserves_served_work():
    """Quantized completion *times* are approximate; the served work is
    not — every request reaches its channel's controller exactly once."""
    reference = run_result("event", channels=2)
    sharded = run_result("sharded", channels=2)
    assert sharded.dram_requests == reference.dram_requests
    assert sharded.reads == reference.reads
    assert sharded.writes == reference.writes
    assert len(sharded.per_channel) == 2
    assert (
        sum(c.requests for c in sharded.per_channel) == sharded.dram_requests
    )
    # per-channel routing is address-determined, identical across backends
    assert [c.requests for c in sharded.per_channel] == [
        c.requests for c in reference.per_channel
    ]


def test_sharded_quantum_controls_completion_quantization():
    coarse = run_result("sharded", channels=2, params={"quantum": 400.0})
    fine = run_result("sharded", channels=2, params={"quantum": 50.0})
    # identical served work at both quanta...
    assert coarse.dram_requests == fine.dram_requests
    # ...but the coarser barrier stretches the core-visible run
    assert coarse.elapsed_ns > fine.elapsed_ns


def test_sharded_rejects_until_stepping():
    system = build_system(
        DesignPoint(design="tprac", nrh=1024),
        homogeneous_traces("433.milc", cores=2, num_accesses=40, seed=0),
        system=SystemConfig(channels=2, engine="sharded"),
    )
    try:
        with pytest.raises(ValueError, match="until"):
            system.run(until=500.0)
    finally:
        system.memory.close()


def test_sharded_rejects_shared_telemetry():
    with pytest.raises(ValueError, match="trace"):
        build_system(
            DesignPoint(design="tprac", nrh=1024),
            homogeneous_traces("433.milc", cores=2, num_accesses=40, seed=0),
            system=SystemConfig(channels=2, engine="sharded", trace=True),
        )


def test_sharded_rejects_live_controller_access_before_run():
    system = build_system(
        DesignPoint(design="tprac", nrh=1024),
        homogeneous_traces("433.milc", cores=2, num_accesses=40, seed=0),
        system=SystemConfig(channels=2, engine="sharded"),
    )
    try:
        with pytest.raises(RuntimeError, match="after run"):
            system.memory.controllers
    finally:
        system.memory.close()
