"""Trace records: golden JSONL round-trip + Chrome trace_event export."""

import json

import pytest

from repro.dram.config import small_test_config
from repro.obs.trace import (
    ALERT,
    ALERT_DONE,
    CHANNEL_TRACK,
    MITIGATION_TRACK,
    PRAC_COUNTER,
    PRAC_RESET,
    TRACE_SCHEMA,
    TREF_SLOT,
    TraceEvent,
    TraceRecorder,
    chrome_trace,
    export_trace_jsonl,
    load_trace_jsonl,
)

pytestmark = pytest.mark.smoke


def _sample_events():
    return [
        TraceEvent("ACT", 100.0, dur=15.0, channel=0, bank=2, row=7),
        TraceEvent(PRAC_COUNTER, 100.0, bank=2, row=7, detail={"count": 3}),
        TraceEvent(ALERT, 150.0, channel=0, bank=2, row=7),
        TraceEvent("RFMab", 160.0, dur=350.0, detail={"provenance": "abo"}),
        TraceEvent(ALERT_DONE, 510.0),
        TraceEvent(PRAC_RESET, 600.0),
        TraceEvent(TREF_SLOT, 700.0, channel=1),
    ]


# ----------------------------------------------------------------------
# JSONL round-trip (the golden on-disk format)
# ----------------------------------------------------------------------
def test_jsonl_golden_serialization(tmp_path):
    # The exact line format is a compatibility contract: header record
    # with sorted keys, then one compact object per event with
    # default-valued fields omitted.
    path = tmp_path / "trace.jsonl"
    export_trace_jsonl(_sample_events()[:2], path, meta={"scenario": "demo"})
    lines = path.read_text().splitlines()
    assert lines[0] == '{"events": 2, "scenario": "demo", "schema": "repro-trace-v1"}'
    assert lines[1] == (
        '{"kind": "ACT", "ts": 100.0, "dur": 15.0, "bank": 2, "row": 7}'
    )
    assert lines[2] == (
        '{"kind": "prac.counter", "ts": 100.0, "bank": 2, "row": 7, '
        '"detail": {"count": 3}}'
    )


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = _sample_events()
    export_trace_jsonl(events, path, meta={"seed": 3})
    header, loaded = load_trace_jsonl(path)
    assert header["schema"] == TRACE_SCHEMA
    assert header["events"] == len(events)
    assert header["seed"] == 3
    assert len(loaded) == len(events)
    for original, parsed in zip(events, loaded):
        for field in TraceEvent.__slots__:
            assert getattr(parsed, field) == getattr(original, field)


def test_jsonl_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    export_trace_jsonl(_sample_events(), path)
    text = path.read_text()
    path.write_text(text[: text.rindex('{"kind"') + 10])  # cut mid-record
    header, loaded = load_trace_jsonl(path)
    assert header["schema"] == TRACE_SCHEMA
    assert len(loaded) == len(_sample_events()) - 1


def test_event_to_dict_omits_defaults():
    assert TraceEvent("PRE", 5.0).to_dict() == {"kind": "PRE", "ts": 5.0}


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
def test_recorder_durations_follow_device_timing():
    config = small_test_config()
    recorder = TraceRecorder(config)
    from repro.dram.commands import Command, CommandKind

    command = Command(CommandKind.ACT, bank_id=1, row=4, issue_time=50.0)
    recorder.observe_command(command, channel=0)
    (event,) = recorder.events
    assert event.kind == "ACT"
    assert event.dur == config.timing.tRCD
    assert (event.bank, event.row, event.ts) == (1, 4, 50.0)
    assert len(recorder) == 1
    assert recorder.counts_by_kind() == {"ACT": 1}


# ----------------------------------------------------------------------
# Chrome trace_event conversion
# ----------------------------------------------------------------------
def test_chrome_trace_layout():
    doc = chrome_trace(_sample_events(), label="t")
    assert doc["otherData"]["schema"] == TRACE_SCHEMA
    events = doc["traceEvents"]
    # process/thread naming metadata for every seen track
    names = {
        (e["pid"], e.get("tid")): e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names[(0, 2)] == "bank 2"
    assert names[(0, CHANNEL_TRACK)] == "channel"
    assert names[(0, MITIGATION_TRACK)] == "mitigation"
    assert (1, MITIGATION_TRACK) in names  # tref.slot on channel 1
    # the ACT command is a complete span carrying its row
    act = next(e for e in events if e["name"] == "ACT")
    assert act["ph"] == "X" and act["dur"] == 15.0 and act["args"]["row"] == 7
    # alert + mitigated fuse into one span covering the window
    alert = next(e for e in events if e["name"] == ALERT)
    assert alert["ph"] == "X"
    assert alert["ts"] == 150.0 and alert["dur"] == 360.0
    assert alert["args"] == {"bank": 2, "row": 7}
    # PRAC counter updates become a counter series
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["name"] == "prac.bank2" and counter["args"]["count"] == 3
    # resets and TREF slots are instant marks
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert instants == {PRAC_RESET, TREF_SLOT}
    json.dumps(doc)  # must be JSON-serializable as-is


def test_chrome_trace_open_alert_renders_as_instant():
    doc = chrome_trace([TraceEvent(ALERT, 10.0, bank=1, row=2)])
    (mark,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert mark["name"] == ALERT and mark["ts"] == 10.0
