"""The structured key=value logger behind --verbose/--quiet."""

import io

import pytest

from repro.obs.log import ENV_VAR, StructuredLogger, get_logger, set_verbosity

pytestmark = pytest.mark.smoke


def _capture(level="info"):
    stream = io.StringIO()
    return StructuredLogger(level=level, stream=stream), stream


def test_info_line_format():
    log, stream = _capture()
    log.info("suite.experiment", experiment="fig10", status="ok", elapsed=3.25)
    assert stream.getvalue() == (
        "suite.experiment experiment=fig10 status=ok elapsed=3.25\n"
    )


def test_values_quote_only_when_needed():
    log, stream = _capture()
    log.info("e", plain="abc", spaced="a b", eq="k=v", empty="", flag=True)
    assert stream.getvalue() == 'e plain=abc spaced="a b" eq="k=v" empty="" flag=true\n'


def test_floats_render_compactly():
    log, stream = _capture()
    log.info("e", x=0.30000000000000004)
    assert stream.getvalue() == "e x=0.3\n"


def test_level_gating():
    log, stream = _capture(level="info")
    log.debug("hidden")
    log.info("shown")
    assert stream.getvalue() == "shown\n"
    log.set_level("quiet")
    log.info("also-hidden")
    log.warning("always")
    assert stream.getvalue() == "shown\nalways\n"
    log.set_level("debug")
    log.debug("now-shown")
    assert stream.getvalue().endswith("now-shown\n")


def test_unknown_level_rejected():
    log, _ = _capture()
    with pytest.raises(ValueError, match="unknown verbosity"):
        log.set_level("loud")


def test_constructor_falls_back_to_info_on_bad_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "bogus")
    assert StructuredLogger().level == "info"
    monkeypatch.setenv(ENV_VAR, "debug")
    assert StructuredLogger().level == "debug"


def test_set_verbosity_updates_default_logger_and_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    original = get_logger().level
    try:
        set_verbosity("quiet")
        assert get_logger().level == "quiet"
        import os

        assert os.environ[ENV_VAR] == "quiet"
    finally:
        set_verbosity(original)
