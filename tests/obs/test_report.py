"""The ``repro obs`` back-end: campaign summaries + trace export."""

import json

import pytest

from repro.obs.heartbeat import HEARTBEAT_FILENAME, HeartbeatWriter
from repro.obs.report import campaign_report, export_trace
from repro.obs.trace import TraceEvent, export_trace_jsonl

pytestmark = pytest.mark.smoke


def _make_campaign_dir(tmp_path):
    (tmp_path / "campaign.json").write_text(json.dumps([
        {"label": "attack=perf", "status": "ok"},
        {"label": "attack=selftest", "status": "error", "trials_error": 1,
         "error": {"type": "RuntimeError", "message": "boom"}},
    ]))
    with HeartbeatWriter(tmp_path / HEARTBEAT_FILENAME) as writer:
        writer.emit("campaign.start", scenarios=2, trials=2)
        writer.emit("trial.finish", status="ok")
        writer.emit("campaign.finish", scenarios_ok=1)
    obs_dir = tmp_path / "obs"
    obs_dir.mkdir()
    export_trace_jsonl(
        [TraceEvent("ACT", 1.0, dur=15.0, bank=0, row=3),
         TraceEvent("RD", 16.0, dur=2.0, bank=0, row=3)],
        obs_dir / "trace-s0.jsonl",
    )
    (obs_dir / "metrics-s0.json").write_text(json.dumps({
        "samples": 4, "interval_ns": 10000.0,
        "latency_percentiles_ns": {"p50": 40.0, "p95": 90.0, "p99": 120.0},
    }))
    return tmp_path


def test_campaign_report_summarizes_everything(tmp_path):
    report = campaign_report(_make_campaign_dir(tmp_path))
    assert f"campaign: {tmp_path}" in report
    assert "scenarios: 2  (error=1  ok=1)" in report
    assert "1 failed (RuntimeError: boom)" in report
    assert "heartbeat: 3 records in latest attempt" in report
    assert "finished after" in report
    assert "trace-s0.jsonl: 2 events  ACT=1  RD=1" in report
    assert "metrics-s0.json: 4 samples @ 10000 ns" in report
    assert "p50=40.0ns" in report


def test_campaign_report_on_bare_directory(tmp_path):
    report = campaign_report(tmp_path)
    assert "no campaign.json index found" in report
    assert "heartbeat: none recorded" in report
    assert "telemetry: none" in report


def test_campaign_report_missing_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a campaign directory"):
        campaign_report(tmp_path / "nope")


def test_export_trace_default_output_path(tmp_path):
    source = tmp_path / "trace-s1.jsonl"
    export_trace_jsonl([TraceEvent("ACT", 1.0, dur=15.0)], source)
    out = export_trace(source)
    assert out == tmp_path / "trace-s1.chrome.json"
    doc = json.loads(out.read_text())
    assert any(e.get("name") == "ACT" for e in doc["traceEvents"])


def test_export_trace_empty_input_raises(tmp_path):
    empty = tmp_path / "trace-empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="no trace records"):
        export_trace(empty)
