"""The metrics registry: handles, null path, bucket percentiles."""

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_buckets,
    registry_or_null,
)

pytestmark = pytest.mark.smoke


def test_counter_gauge_histogram_basics():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    gauge = Gauge("g")
    gauge.set(7.0)
    gauge.set(-1.0)
    assert gauge.value == -1.0
    hist = Histogram("h", (10.0, 20.0))
    for value in (5.0, 15.0, 99.0):
        hist.observe(value)
    assert hist.counts == [1, 1, 1]
    assert hist.total == 3 and hist.sum == 119.0


def test_registry_returns_the_same_handle_per_name():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("y") is registry.gauge("y")
    assert registry.histogram("z", (1.0,)) is registry.histogram("z", (1.0,))


def test_histogram_bounds_conflict_raises():
    registry = MetricsRegistry()
    registry.histogram("h", (1.0, 2.0))
    with pytest.raises(ValueError, match="already registered"):
        registry.histogram("h", (1.0, 3.0))


def test_disabled_registry_hands_out_shared_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("anything")
    assert counter is NULL_COUNTER
    assert registry.gauge("g") is NULL_GAUGE
    assert registry.histogram("h", (1.0,)) is NULL_HISTOGRAM
    # bumping the no-ops must not mutate shared state
    counter.inc(100.0)
    NULL_GAUGE.set(5.0)
    NULL_HISTOGRAM.observe(1.0)
    assert NULL_COUNTER.value == 0.0
    assert NULL_GAUGE.value == 0.0
    assert NULL_HISTOGRAM.total == 0
    # nothing is registered, so the snapshot stays empty
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_null_registry_module_singleton():
    assert not NULL_REGISTRY.enabled
    assert registry_or_null(None) is NULL_REGISTRY
    live = MetricsRegistry()
    assert registry_or_null(live) is live


def test_snapshot_is_sorted_and_jsonable():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc(2.0)
    registry.gauge("depth").set(4.0)
    registry.histogram("lat", (10.0,)).observe(3.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["counters"]["a"] == 2.0
    assert snap["histograms"]["lat"]["counts"] == [1, 0]


# ----------------------------------------------------------------------
# percentile_from_buckets (shared with ControllerStats)
# ----------------------------------------------------------------------
def test_percentile_empty_histogram_is_zero():
    assert percentile_from_buckets((10.0, 20.0), [0, 0, 0], 0.5) == 0.0


def test_percentile_interpolates_inside_bucket():
    # 10 observations uniformly in the (0, 10] bucket: median ~ 5.
    assert percentile_from_buckets((10.0,), [10, 0], 0.5) == pytest.approx(5.0)


def test_percentile_overflow_clamps_to_last_edge():
    assert percentile_from_buckets((10.0, 20.0), [0, 0, 5], 0.99) == 20.0


def test_percentile_rejects_bad_quantile():
    with pytest.raises(ValueError, match="quantile"):
        percentile_from_buckets((10.0,), [1, 0], 1.5)
