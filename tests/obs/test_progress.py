"""The live campaign progress renderer (non-TTY degradation path)."""

import io

import pytest

from repro.obs.progress import CampaignProgressRenderer

pytestmark = pytest.mark.smoke


def _drive(renderer, events):
    for event, fields in events:
        renderer.on_event(event, fields)


def test_non_tty_prints_one_line_per_scenario():
    stream = io.StringIO()
    renderer = CampaignProgressRenderer(stream=stream)
    assert not renderer.is_tty
    _drive(renderer, [
        ("campaign.start", {"scenarios": 2, "trials": 2}),
        ("scenario.start", {"label": "a"}),
        ("trial.finish", {"label": "a", "status": "ok"}),
        ("trial.finish", {"label": "a", "status": "ok"}),
        ("scenario.finish", {"label": "a"}),
        ("scenario.start", {"label": "b"}),
        ("trial.finish", {"label": "b", "status": "ok"}),
        ("trial.finish", {"label": "b", "status": "ok"}),
        ("scenario.finish", {"label": "b"}),
        ("campaign.finish", {"scenarios_ok": 2}),
    ])
    lines = stream.getvalue().splitlines()
    # one line per scenario completion + the closing line
    assert lines == [
        "campaign 1/2 scenarios | 2/4 trials | a",
        "campaign 2/2 scenarios | 4/4 trials | b",
        "campaign 2/2 scenarios | 4/4 trials | b",
    ]


def test_faulted_trial_counts_once_with_a_fault():
    # run_campaign emits trial.fault *and* trial.finish for a failed
    # trial: the fault bumps the fault tally only, the finish bumps the
    # trial count, so nothing is double-counted.
    stream = io.StringIO()
    renderer = CampaignProgressRenderer(stream=stream)
    _drive(renderer, [
        ("campaign.start", {"scenarios": 1, "trials": 2}),
        ("trial.fault", {"seed": 0}),
        ("trial.finish", {"label": "x", "status": "error"}),
        ("trial.finish", {"label": "x", "status": "ok"}),
        ("scenario.finish", {"label": "x"}),
        ("campaign.finish", {}),
    ])
    assert renderer.trials_done == 2
    assert renderer.faults == 1
    assert "1 fault |" in stream.getvalue()


def test_cached_scenarios_count_their_trials():
    stream = io.StringIO()
    renderer = CampaignProgressRenderer(stream=stream)
    _drive(renderer, [
        ("campaign.start", {"scenarios": 2, "trials": 3, "resumed": True}),
        ("scenario.cached", {"label": "a", "trials": 3}),
        ("campaign.finish", {}),
    ])
    assert renderer.scenarios_done == 1
    assert renderer.trials_done == 3
    assert "1 cached" in stream.getvalue()


def test_unknown_events_are_ignored():
    renderer = CampaignProgressRenderer(stream=io.StringIO())
    renderer.on_event("future.event", {"anything": 1})  # must not raise
    assert renderer.trials_done == 0
