"""Telemetry wired through the real memory system.

The zero-overhead-off contract: with ``trace``/``metrics`` at their
defaults nothing is attached and simulation results are identical to a
telemetry-enabled run — turning observation on must never perturb what
is observed.
"""

import json

import pytest

from repro.config import SystemConfig
from repro.controller.memory_system import MemorySystem
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.config import small_test_config
from repro.obs.export import export_system_telemetry
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import TRACE_SCHEMA, load_trace_jsonl

pytestmark = pytest.mark.smoke


def _run_system(system=None, requests=300, channels=1):
    # The workload must be identical across telemetry settings, so all
    # requests are enqueued up front (arrival pattern independent of
    # how many engine events each configuration fires per step).
    engine = Engine()
    config = small_test_config().with_organization(channels=channels)
    memory = MemorySystem(engine, config, system=system)
    for index in range(requests):
        addr = (index * 977) % (1 << 20)
        memory.enqueue(MemRequest(addr, is_write=(index % 8 == 7)))
    while not memory.idle():
        engine.step()
    return memory


def _result_fingerprint(memory):
    stats = memory.stats
    return (
        stats.requests_served,
        stats.total_latency,
        stats.row_hits,
        [c.refresh.refresh_count for c in memory.controllers],
        [c.channel.rfm_count for c in memory.controllers],
    )


def test_telemetry_off_attaches_nothing():
    memory = _run_system(system=None, requests=50)
    assert memory.recorder is None
    assert memory.sampler is None
    assert memory.metrics is NULL_REGISTRY
    for controller in memory.controllers:
        assert controller.recorder is None


def test_telemetry_does_not_perturb_simulation_results():
    baseline = _result_fingerprint(_run_system(system=None))
    traced = _result_fingerprint(
        _run_system(system=SystemConfig(trace=True, metrics=True))
    )
    assert traced == baseline


def test_trace_records_commands_and_lifecycle():
    memory = _run_system(system=SystemConfig(trace=True))
    recorder = memory.recorder
    assert recorder is not None and len(recorder) > 0
    counts = recorder.counts_by_kind()
    assert counts["ACT"] > 0 and counts["RD"] > 0 and counts["WR"] > 0
    # every ACT also logs the row's PRAC counter value
    assert counts["prac.counter"] == counts["ACT"]


def test_metrics_registry_collects_core_counters():
    # 300 requests drain in under one tREFI; use a longer workload so at
    # least one REFab lands inside the observed window.
    memory = _run_system(system=SystemConfig(metrics=True), requests=4000)
    assert memory.metrics.enabled
    snap = memory.metrics.snapshot()
    refabs = sum(c.refresh.refresh_count for c in memory.controllers)
    assert snap["counters"]["dram.refab"] == refabs > 0
    assert "abo.alerts" in snap["counters"]
    assert "rfm.abo" in snap["counters"]


def test_sampler_records_windowed_series():
    # long enough to cross at least one 10 us sampling interval
    memory = _run_system(system=SystemConfig(metrics=True), requests=4000)
    sampler = memory.sampler
    assert sampler is not None
    assert len(sampler.series["t"]) > 0
    payload = sampler.to_payload()
    assert payload["samples"] == len(sampler.series["t"])
    assert set(payload["series"]) == {
        "t", "queue_depth", "row_hit_rate", "bus_occupancy",
        "alerts_per_s", "events_per_wall_s",
    }


def test_multi_channel_shares_one_recorder_and_registry():
    memory = _run_system(
        system=SystemConfig(trace=True, metrics=True), channels=2
    )
    recorders = {id(c.recorder) for c in memory.controllers}
    assert recorders == {id(memory.recorder)}
    channels_seen = {e.channel for e in memory.recorder.events}
    assert channels_seen == {0, 1}


def test_export_system_telemetry_writes_all_artifacts(tmp_path):
    memory = _run_system(system=SystemConfig(trace=True, metrics=True))
    written = export_system_telemetry(
        memory, tmp_path, stem="unit-s0", meta={"scenario": "unit", "seed": 0}
    )
    assert set(written) == {"trace_jsonl", "trace_chrome", "metrics"}
    header, events = load_trace_jsonl(written["trace_jsonl"])
    assert header["schema"] == TRACE_SCHEMA and header["scenario"] == "unit"
    assert len(events) == header["events"] == len(memory.recorder)
    chrome = json.loads(written["trace_chrome"].read_text())
    assert chrome["traceEvents"]
    metrics = json.loads(written["metrics"].read_text())
    assert metrics["samples"] >= 1  # closing sample guarantees one
    assert metrics["registry"]["counters"]["dram.refab"] >= 0
    assert set(metrics["latency_percentiles_ns"]) == {"p50", "p95", "p99"}


def test_export_with_telemetry_off_writes_nothing(tmp_path):
    memory = _run_system(system=None, requests=50)
    assert export_system_telemetry(memory, tmp_path, stem="off") == {}
    assert list(tmp_path.iterdir()) == []
