"""Heartbeat stream: append-only lifecycle records + resume semantics."""

import json

import pytest

from repro.obs.heartbeat import (
    HEARTBEAT_FILENAME,
    HeartbeatWriter,
    last_run,
    read_heartbeat,
    summarize,
)

pytestmark = pytest.mark.smoke


def test_emit_and_read_round_trip(tmp_path):
    path = tmp_path / HEARTBEAT_FILENAME
    with HeartbeatWriter(path) as writer:
        writer.emit("campaign.start", scenarios=2, trials=3)
        writer.emit("trial.finish", scenario_id="abc", seed=0)
    records = read_heartbeat(path)
    assert [r["event"] for r in records] == ["campaign.start", "trial.finish"]
    assert [r["seq"] for r in records] == [0, 1]
    assert records[0]["scenarios"] == 2
    assert all("wall_time" in r for r in records)


def test_read_accepts_the_campaign_directory(tmp_path):
    with HeartbeatWriter(tmp_path / HEARTBEAT_FILENAME) as writer:
        writer.emit("campaign.start")
    assert len(read_heartbeat(tmp_path)) == 1


def test_read_missing_file_is_empty(tmp_path):
    assert read_heartbeat(tmp_path) == []


def test_read_tolerates_truncated_tail(tmp_path):
    path = tmp_path / HEARTBEAT_FILENAME
    with HeartbeatWriter(path) as writer:
        writer.emit("campaign.start")
        writer.emit("trial.finish")
    with open(path, "a") as handle:
        handle.write('{"event": "trial.fin')  # writer died mid-line
    records = read_heartbeat(path)
    assert [r["event"] for r in records] == ["campaign.start", "trial.finish"]


def test_resume_appends_a_second_attempt(tmp_path):
    # An interrupted campaign leaves no campaign.finish; the resumed
    # attempt appends after the old tail, and last_run() isolates it.
    path = tmp_path / HEARTBEAT_FILENAME
    with HeartbeatWriter(path) as writer:
        writer.emit("campaign.start", resumed=False)
        writer.emit("trial.finish", seed=0)
    with HeartbeatWriter(path) as writer:  # fresh writer = resumed process
        writer.emit("campaign.start", resumed=True)
        writer.emit("scenario.cached", trials=3)
        writer.emit("campaign.finish", scenarios_ok=1)
    records = read_heartbeat(path)
    assert len(records) == 5
    latest = last_run(records)
    assert [r["event"] for r in latest] == [
        "campaign.start", "scenario.cached", "campaign.finish",
    ]
    assert latest[0]["resumed"] is True
    assert summarize(latest)["finished"]
    assert not summarize(records[:2])["finished"]


def test_summarize_counts_events_and_faults(tmp_path):
    path = tmp_path / HEARTBEAT_FILENAME
    with HeartbeatWriter(path) as writer:
        writer.emit("campaign.start")
        writer.emit("trial.finish", status="error")
        writer.emit("trial.fault", scenario_id="abc", seed=1,
                    error_type="RuntimeError", error="boom")
    summary = summarize(read_heartbeat(path))
    assert summary["events"]["trial.fault"] == 1
    assert summary["faults"][0]["error_type"] == "RuntimeError"
    assert summary["finished"] is False
    assert summary["wall_seconds"] is not None


def test_records_are_plain_json_lines(tmp_path):
    path = tmp_path / HEARTBEAT_FILENAME
    with HeartbeatWriter(path) as writer:
        writer.emit("campaign.start")
    (line,) = path.read_text().splitlines()
    assert json.loads(line)["event"] == "campaign.start"
