"""Bench: regenerate Table 2 (covert channel period and bitrate)."""

from benchmarks.conftest import emit

from repro.experiments import table2_covert


def test_table2_covert_channels(benchmark):
    result = benchmark.pedantic(
        lambda: table2_covert.run(
            nbo_values=(256, 512, 1024), activity_bits=8, count_symbols=5
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Table 2 (paper: activity 41.4/21.4/10.9 Kbps; "
        "count 123.6/70.3/38.8 Kbps)",
        result.format_table(),
    )
    # Shape assertions: bitrate halves as N_BO doubles; count > activity.
    for channel in ("Activity-Based", "Activation-Count-Based"):
        r256 = result.row(channel, 256).bitrate_kbps
        r512 = result.row(channel, 512).bitrate_kbps
        r1024 = result.row(channel, 1024).bitrate_kbps
        assert r256 > r512 > r1024
        assert 1.6 < r256 / r512 < 2.4
    assert (
        result.row("Activation-Count-Based", 256).bitrate_kbps
        > 3 * result.row("Activity-Based", 256).bitrate_kbps
    )
    # All transmissions decode cleanly (paper: < 0.1% error).
    assert all(row.error_rate == 0.0 for row in result.rows)
