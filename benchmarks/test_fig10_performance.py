"""Bench: regenerate Figure 10 (normalized performance at N_RH=1024)."""

from benchmarks.conftest import emit

from repro.experiments import fig10_performance


def test_fig10_normalized_performance(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig10_performance.run(nrh=1024, **bench_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 10 (paper geomeans: TPRAC 0.966, ABO+ACB 0.993, "
        "ABO-Only ~1.0)",
        result.format_table(),
    )
    tprac = result.geomean("tprac@1024")
    acb = result.geomean("abo_acb@1024")
    abo = result.geomean("abo_only@1024")
    # Ordering: TPRAC pays the most; ABO-Only essentially free.
    assert tprac < acb
    assert abo > 0.995
    # TPRAC's slowdown within the paper's band (3.4% avg, <= ~9% worst).
    assert 0.5 <= result.slowdown_pct("tprac@1024") <= 9.0
    worst = result.worst_workload("tprac@1024")
    assert worst.normalized > 0.90
