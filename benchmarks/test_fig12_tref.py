"""Bench: regenerate Figure 12 (Targeted-Refresh rate sensitivity)."""

from benchmarks.conftest import emit

from repro.experiments import fig12_tref


def test_fig12_tref_rates(benchmark, bench_scale):
    workloads = bench_scale["workloads"]
    result = benchmark.pedantic(
        lambda: fig12_tref.run(
            nrh=1024,
            tref_rates=(0.0, 0.25, 0.5, 1.0),
            workloads=workloads[:3] if workloads else None,
            requests_per_core=bench_scale["requests_per_core"],
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 12 (paper slowdowns: 3.4% none, 2.4% @1/4, 1.4% @1/2, "
        "~0% @1/1 tREFI)",
        result.format_table(),
    )
    # More TREFs -> fewer TB-RFMs -> monotonically less slowdown.
    none = result.geomean(0.0)
    quarter = result.geomean(0.25)
    full = result.geomean(1.0)
    assert none <= quarter + 0.003
    assert quarter <= full + 0.003
    assert full > 0.985           # ~zero overhead at 1 TREF per tREFI
