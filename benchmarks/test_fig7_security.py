"""Bench: regenerate Figure 7 (Feinting TMAX vs TB-Window)."""

from benchmarks.conftest import emit

from repro.experiments import fig7_security


def test_fig7_tmax_sweep(benchmark):
    result = benchmark.pedantic(fig7_security.run, rounds=1, iterations=1)
    emit(
        "Figure 7 (paper: reset 105/572/2138, no-reset 118/736/3220 at "
        "0.25/1/4 tREFI)",
        result.format_table(),
    )
    assert result.tmax(0.25, True) == 105
    assert result.tmax(1.0, True) == 572
    assert abs(result.tmax(4.0, True) - 2138) <= 1
    assert result.tmax(0.25, False) == 118
    assert result.tmax(1.0, False) == 736
    assert abs(result.tmax(4.0, False) - 3220) <= 1
