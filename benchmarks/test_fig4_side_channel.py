"""Bench: regenerate Figure 4 (AES side-channel attack instance)."""

from benchmarks.conftest import emit

from repro.experiments import fig4_side_channel


def test_fig4_attack_instance(benchmark):
    result = benchmark.pedantic(
        lambda: fig4_side_channel.run(key_byte=0x00, encryptions=200),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 4 (paper: 207 victim acts on Row-0, ABO after 49 "
        "attacker acts, p0=0, k0=0)",
        result.format_table(),
    )
    attack = result.attack
    assert attack.success
    assert attack.trigger_row == 0          # k0=0, p0=0 -> Row-0
    # Victim hot-row accesses land near 1 per encryption + background.
    hot = max(attack.victim_histogram.values())
    assert 180 <= hot <= 300
    # Combined victim + attacker activations cross N_BO = 256.
    assert 0 < attack.attacker_acts_on_trigger < 256
