"""Bench: regenerate Table 5 (energy overhead per N_RH)."""

from benchmarks.conftest import emit

from repro.experiments import table5_energy


def test_table5_energy_overhead(benchmark, bench_scale):
    workloads = bench_scale["workloads"]
    result = benchmark.pedantic(
        lambda: table5_energy.run(
            nrh_values=(256, 1024, 4096),
            workloads=workloads[:2] if workloads else None,
            requests_per_core=max(2_500, bench_scale["requests_per_core"]),
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Table 5 (paper totals: 26.1% @256, 7.4% @1024, 1.0% @4096)",
        result.format_table(),
    )
    # Energy overhead grows monotonically as the threshold drops, with
    # both mitigation and execution-time components contributing.
    assert (
        result.by_nrh[256].total_pct
        > result.by_nrh[1024].total_pct
        > result.by_nrh[4096].total_pct
        >= 0.0
    )
    assert result.by_nrh[256].mitigation_pct > 0
