"""Benches for the paper's worked example and Section 7 alternatives."""

from benchmarks.conftest import emit

from repro.attacks.acb_channel import AcbRfmChannel
from repro.attacks.feinting_sim import FeintingAttack
from repro.experiments import fig8_walkthrough, obfuscation_defense


def test_fig8_single_entry_queue_walkthrough(benchmark):
    result = benchmark.pedantic(fig8_walkthrough.run, rounds=1, iterations=1)
    emit(
        "Figure 8 walkthrough (paper: T peaks at 83 of N_BO=100 in the "
        "toy timeline; here the final epoch is cut at the TB-RFM)",
        result.format_table(),
    )
    assert result.secure
    assert result.alerts == 0
    assert result.target_peak < result.nbo
    # Decoys were sacrificed one per epoch: A then B then C.
    mitigated = [name for snap in result.snapshots for name in snap.mitigated]
    assert mitigated[:3] == ["A", "B", "C"]
    assert "T" in mitigated  # final TB-RFM catches the target


def test_obfuscation_defense_tradeoff(benchmark):
    result = benchmark.pedantic(
        lambda: obfuscation_defense.run(bits=10), rounds=1, iterations=1
    )
    emit(
        "Section 7.1: random-RFM injection vs TPRAC (activity channel)",
        result.format_table(),
    )
    undefended = result.outcome("none")
    obfuscated = result.outcome("obfuscation")
    tprac = result.outcome("tprac")
    # The naive single-window decoder is broken by both defenses...
    assert undefended.error_rate == 0.0
    assert obfuscated.error_rate > 0.15
    assert tprac.error_rate > 0.15
    # ...but injection leaves a statistical residue (TV > 0), while
    # TPRAC's RFM schedule carries no activity information at all.
    assert 0.0 < result.analytical.total_variation < 1.0
    assert 0.5 < result.analytical.classifier_accuracy < 1.0


def test_acb_rfm_channel_leaks_until_tprac(benchmark):
    """Figure 2(b): the JEDEC Targeted-RFM flow is itself a channel."""
    message = [1, 0, 1, 1, 0, 0, 1, 0]

    def run_both():
        return {
            "acb": AcbRfmChannel(bat=64, message=message, defense="acb").run(),
            "tprac": AcbRfmChannel(bat=64, message=message, defense="tprac").run(),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = []
    for name, res in results.items():
        lines.append(
            f"{name:6s} err={res.error_rate:.2f} "
            f"rfm-counts/window={res.rfm_counts_per_window}"
        )
    emit("Figure 2(b): ACB-RFM activity channel vs TPRAC", "\n".join(lines))
    assert results["acb"].error_rate == 0.0
    counts = results["tprac"].rfm_counts_per_window
    assert max(counts) - min(counts) <= 1   # flat: no information


def test_feinting_empirical_vs_analytical(benchmark):
    """The executed worst-case attack never beats the Eq. 2-5 bound."""

    def run_pools():
        return {pool: FeintingAttack(pool_size=pool).run() for pool in (8, 16, 32)}

    results = benchmark.pedantic(run_pools, rounds=1, iterations=1)
    lines = ["pool  measured-peak  analytical-TMAX  alerts"]
    for pool, res in results.items():
        lines.append(
            f"{pool:4d}  {res.target_peak:13d}  {res.analytical_tmax:15d}  "
            f"{res.alerts:6d}"
        )
    emit("Feinting: simulator vs analysis (measured <= bound, 0 alerts)",
         "\n".join(lines))
    for res in results.values():
        assert res.within_bound
        assert res.defense_held
