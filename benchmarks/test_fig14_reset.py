"""Bench: regenerate Figure 14 (counter-reset policy sensitivity)."""

from benchmarks.conftest import emit

from repro.experiments import fig14_reset


def test_fig14_counter_reset(benchmark, bench_scale):
    workloads = bench_scale["workloads"]
    result = benchmark.pedantic(
        lambda: fig14_reset.run(
            nrh_values=(256, 1024),
            workloads=workloads[:3] if workloads else None,
            requests_per_core=bench_scale["requests_per_core"],
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 14 (paper: reset helps at low N_RH via longer "
        "TB-Windows; <1% effect at N_RH >= 1024)",
        result.format_table(),
    )
    # Reset lowers the worst-case TMAX, so it always allows a longer
    # (or equal) TB-Window than no-reset at the same threshold.
    for nrh in (256, 1024):
        assert result.windows[(nrh, True)] >= result.windows[(nrh, False)]
    # At low N_RH the longer window translates into better performance.
    assert result.geomean(256, True) >= result.geomean(256, False) - 0.003
    # At N_RH=1024 the gap narrows (paper: <1% at 200M-instruction
    # scale; short runs exaggerate it slightly, so allow a few %).
    delta = abs(result.geomean(1024, True) - result.geomean(1024, False))
    assert delta < 0.04
    # The reset-policy benefit shrinks (relatively) as N_RH rises.
    gain_256 = result.geomean(256, True) - result.geomean(256, False)
    assert gain_256 > -0.003
