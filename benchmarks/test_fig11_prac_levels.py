"""Bench: regenerate Figure 11 (PRAC-level sensitivity)."""

from benchmarks.conftest import emit

from repro.experiments import fig11_prac_levels


def test_fig11_prac_level_insensitivity(benchmark, bench_scale):
    workloads = bench_scale["workloads"]
    result = benchmark.pedantic(
        lambda: fig11_prac_levels.run(
            nrh=1024,
            prac_levels=(1, 2, 4),
            workloads=workloads[:3] if workloads else None,
            requests_per_core=bench_scale["requests_per_core"],
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 11 (paper: flat across PRAC-1/2/4; TPRAC 3.4%, "
        "ABO+ACB 0.7%, ABO-Only ~0%)",
        result.format_table(),
    )
    # Performance is insensitive to the PRAC level for every design
    # because no design lets ABO-RFMs materialize.
    for design in ("abo_only", "abo_acb", "tprac"):
        values = [result.geomean(level, design) for level in (1, 2, 4)]
        assert max(values) - min(values) < 0.01, design
