"""Bench: regenerate Figure 13 (N_RH sweep, all designs)."""

from benchmarks.conftest import emit

from repro.experiments import fig13_nrh


def test_fig13_nrh_sweep(benchmark, bench_scale):
    workloads = bench_scale["workloads"]
    result = benchmark.pedantic(
        lambda: fig13_nrh.run(
            nrh_values=(256, 1024, 4096),
            workloads=workloads[:3] if workloads else None,
            requests_per_core=bench_scale["requests_per_core"],
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 13 (paper TPRAC slowdowns: 14.1% @256, 3.4% @1024, "
        "0.6% @4096)",
        result.format_table(),
    )
    # TPRAC's overhead grows as the threshold drops.
    slow_256 = result.slowdown_pct(256, "tprac")
    slow_1024 = result.slowdown_pct(1024, "tprac")
    slow_4096 = result.slowdown_pct(4096, "tprac")
    assert slow_256 > slow_1024 > slow_4096
    # ABO-Only stays near zero at every threshold.
    for nrh in (256, 1024, 4096):
        assert result.slowdown_pct(nrh, "abo_only") < 1.0
    # TPRAC pays more than ABO+ACB at the same threshold (the paper's
    # price of closing the channel).
    assert result.slowdown_pct(256, "tprac") >= result.slowdown_pct(256, "abo_acb")
