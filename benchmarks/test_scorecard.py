"""Capstone bench: the full reproduction scorecard."""

from benchmarks.conftest import emit

from repro.experiments.scorecard import run


def test_reproduction_scorecard(benchmark):
    card = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Reproduction scorecard (paper claims vs this repo)",
         card.format_table())
    assert card.all_passed, card.format_table()
    assert len(card.checks) >= 10
