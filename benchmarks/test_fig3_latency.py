"""Bench: regenerate Figure 3 (ABO-induced latency timelines)."""

from benchmarks.conftest import emit

from repro.experiments import fig3_latency


def test_fig3_latency_timelines(benchmark):
    result = benchmark.pedantic(
        lambda: fig3_latency.run(nbo=256, hammer_rounds=3, duration_ns=300_000),
        rounds=1,
        iterations=1,
    )
    emit("Figure 3: latency under ABO (paper spikes: 545/976/1669 ns)",
         result.format_table())
    one = result.timelines["1 RFM/ABO"].mean_spike_latency()
    two = result.timelines["2 RFM/ABO"].mean_spike_latency()
    four = result.timelines["4 RFM/ABO"].mean_spike_latency()
    assert one < two < four
    assert result.timelines["No ABO"].abo_count == 0
