"""Bench: regenerate Figure 9 (side channel with/without TPRAC)."""

from benchmarks.conftest import emit

from repro.experiments import fig9_defense


def test_fig9_defense_validation(benchmark):
    result = benchmark.pedantic(
        lambda: fig9_defense.run(key_values=[0, 96, 224], encryptions=150),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 9 (paper: undefended trigger row tracks the key; "
        "TPRAC makes it key-independent)",
        result.format_table(),
    )
    assert result.leak_rate_undefended == 1.0
    # With TPRAC the recovered nibbles stop tracking the key.
    assert result.leak_rate_defended <= 1 / 3
    # And no ABO ever fires under the defense (all RFMs timing-based).
    for attack in result.with_defense.results:
        assert attack.rfm_times, "TB-RFMs should still be observable"
