"""Benchmark configuration.

Each benchmark regenerates one paper table/figure at a reduced scale
(so ``pytest benchmarks/ --benchmark-only`` finishes on a laptop) and
prints the same rows/series the paper reports.  Set ``REPRO_FULL=1``
to run the experiment harnesses at their larger scales instead; the
standalone harnesses in :mod:`repro.experiments` accept explicit
workload lists and request budgets for paper-scale runs.
"""

import os

import pytest


@pytest.fixture
def bench_scale():
    """(workload count, requests-per-core) used by the perf benches."""
    if os.environ.get("REPRO_FULL", "0") == "1":
        return dict(workloads=None, requests_per_core=20_000)
    return dict(
        workloads=["433.milc", "470.lbm", "401.bzip2", "453.povray"],
        requests_per_core=1_500,
    )


def emit(title: str, body: str) -> None:
    """Print a regenerated table under a banner (visible with -s)."""
    print(f"\n=== {title} ===")
    print(body)
