"""Bench: regenerate Figure 5 (key-byte sweep, no defense)."""

from benchmarks.conftest import emit

from repro.experiments import fig5_key_sweep


def test_fig5_key_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: fig5_key_sweep.run(
            key_values=list(range(0, 256, 32)), encryptions=200
        ),
        rounds=1,
        iterations=1,
    )
    emit("Figure 5 (trigger row tracks k0's top nibble)", result.format_table())
    assert result.recovery_rate == 1.0
    # The trigger row moves monotonically with the key nibble.
    rows = [r.trigger_row for r in result.results]
    assert rows == sorted(rows)
    assert rows[0] == 0 and rows[-1] == 14
