"""Ablation benches for TPRAC's design choices.

1. Mitigation-queue design (Section 4.2.3): the single-entry frequency
   queue matches deeper priority queues on the Feinting worst case,
   while a FIFO queue is attackable.
2. Attack strategies (Section 4.2.3 scenarios): equal / delayed /
   early-aggressive activations never beat the Feinting pattern.
3. Per-bank RFM extension (Section 7.2): RFMpb removes the channel-wide
   stall, cutting TPRAC's slowdown.
"""

from benchmarks.conftest import emit

from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.cpu.system import System
from repro.dram.config import ddr5_8000b, small_test_config
from repro.mitigations import NoMitigationPolicy, PerBankRfmPolicy, TpracPolicy
from repro.prac.mitigation_queue import (
    FifoMitigationQueue,
    PriorityMitigationQueue,
    SingleEntryFrequencyQueue,
)
from repro.workloads.synthetic import homogeneous_traces


def _feinting_max_counter(queue_factory, nbo=64, pool=8, tb_window=2000.0):
    """Drive a small Feinting pattern against TPRAC with a given queue;
    return the highest activation count any row ever reached."""
    config = small_test_config(rows_per_bank=1024, nbo=nbo).with_prac(
        nbo=nbo, abo_act=0
    )
    engine = Engine()
    policy = TpracPolicy(tb_window=tb_window, queue_factory=queue_factory)
    mc = MemoryController(
        engine, config, policy=policy, enable_refresh=False, record_samples=False
    )
    rows = list(range(pool))
    state = {"i": 0, "peak": 0}
    total_accesses = pool * nbo

    def issue(req=None):
        if state["i"] >= total_accesses:
            return
        row = rows[state["i"] % len(rows)]
        state["i"] += 1
        bank = mc.channel.bank(0)
        state["peak"] = max(state["peak"], max(bank.counters.values(), default=0))
        mc.enqueue(MemRequest(phys_addr=bank_address(mc, 0, row), on_complete=issue))

    issue()
    engine.run(until=100_000_000)
    bank = mc.channel.bank(0)
    state["peak"] = max(state["peak"], max(bank.counters.values(), default=0))
    return state["peak"], mc.abo.alert_count


def test_queue_design_ablation(benchmark):
    def run_all():
        return {
            "single-entry": _feinting_max_counter(SingleEntryFrequencyQueue),
            "priority-4": _feinting_max_counter(
                lambda: PriorityMitigationQueue(capacity=4)
            ),
            "fifo-4": _feinting_max_counter(
                lambda: FifoMitigationQueue(capacity=4)
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["queue          peak-counter  alerts (N_BO=64)"]
    for name, (peak, alerts) in results.items():
        lines.append(f"{name:14s} {peak:12d}  {alerts:6d}")
    emit("Ablation: mitigation queue designs under round-robin feinting",
         "\n".join(lines))
    single_peak, single_alerts = results["single-entry"]
    priority_peak, _ = results["priority-4"]
    # Single-entry matches the deeper priority queue's protection.
    assert single_alerts == 0
    assert single_peak < 64
    assert abs(single_peak - priority_peak) <= 8


def test_attack_strategy_ablation(benchmark):
    """Section 4.2.3: alternative strategies do not beat Feinting."""

    def run_strategies():
        from repro.analysis.feinting import acts_per_tb_window, feinting_target_acts

        config = ddr5_8000b()
        window = config.timing.tREFI
        acts = acts_per_tb_window(config, window)
        feinting = feinting_target_acts(8192, acts)
        # Equal activations forever: mitigated rows keep soaking acts,
        # so the target can never exceed one window's worth times the
        # share it gets in a pool that never shrinks below the pool size.
        equal = 2 * acts
        # Early-aggressive: the target is always the queue's top entry,
        # so it is mitigated every window: at most one window of acts.
        aggressive = acts
        return {"feinting": feinting, "equal": equal, "aggressive": aggressive}

    results = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    emit(
        "Ablation: attack strategies (paper: aggressive ~12x below "
        "Feinting)",
        "\n".join(f"{k:12s} TACT={v}" for k, v in results.items()),
    )
    assert results["feinting"] > results["equal"]
    assert results["feinting"] > 5 * results["aggressive"]


def test_rfmpb_extension_reduces_slowdown(benchmark, bench_scale):
    """Section 7.2: per-bank TB-RFMs cost less than all-bank ones."""

    def run_comparison():
        traces = homogeneous_traces("433.milc", cores=4, num_accesses=1_500)
        base = System(traces, policy=NoMitigationPolicy(), enable_abo=False).run()
        ab = System(
            traces, policy=TpracPolicy(tb_window=4000.0), enable_abo=False
        ).run()
        pb = System(
            traces, policy=PerBankRfmPolicy(tb_window=4000.0), enable_abo=False
        ).run()
        return {
            "rfmab": ab.total_ipc / base.total_ipc,
            "rfmpb": pb.total_ipc / base.total_ipc,
        }

    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        "Ablation: all-bank vs per-bank TB-RFMs (RFMpb blocks one bank "
        "for 130 ns instead of the channel for 350 ns)",
        "\n".join(f"{k:8s} normalized={v:.4f}" for k, v in results.items()),
    )
    assert results["rfmpb"] > results["rfmab"]
