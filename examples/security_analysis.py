#!/usr/bin/env python3
"""TPRAC security analysis: Feinting worst case and defense tuning.

Reproduces the paper's analytical machinery (Section 4.2):

1. Figure 7 — the theoretical maximum activations to a target row
   (TMAX) as the TB-Window varies, with and without per-row counter
   reset at tREFW.
2. The TB-Window operating points for each RowHammer threshold.
3. The obfuscation-defense trade-off from Section 7.1: how much
   information still leaks per injected-RFM rate.

Run:  python examples/security_analysis.py
"""

from repro.analysis.feinting import tmax_sweep
from repro.analysis.obfuscation_analysis import sweep_injection_rates
from repro.analysis.tb_window import tb_window_for_nrh


def main() -> None:
    print("=== Figure 7: TMAX vs TB-Window (Feinting worst case) ===")
    print("TB-Window(tREFI)   TMAX w/reset   TMAX w/o reset")
    sweep = tmax_sweep()
    for with_r, without_r in zip(sweep["with_reset"], sweep["without_reset"]):
        print(f"{with_r.tb_window_trefi:16.2f}   {with_r.tmax:12d}   "
              f"{without_r.tmax:14d}")
    print("(paper: 105/572/2138 with reset, 118/736/3220 without, "
          "at 0.25/1/4 tREFI)")

    print("\n=== TB-Window operating points per RowHammer threshold ===")
    print("N_RH    window(us)   window(tREFI)   TB-RFM bandwidth loss")
    for nrh in (128, 256, 512, 1024, 2048, 4096):
        choice = tb_window_for_nrh(nrh)
        loss = 350.0 / choice.tb_window * 100
        print(f"{nrh:<8d}{choice.tb_window/1000:9.2f}   "
              f"{choice.tb_window_trefi:13.2f}   {loss:18.1f}%")

    print("\n=== Section 7.1: obfuscation defense residual leakage ===")
    print("inject-rate   distinguishability   classifier accuracy")
    for leak in sweep_injection_rates([0.0, 0.1, 0.25, 0.5, 0.9], windows=64):
        print(f"{leak.inject_prob:11.2f}   {leak.total_variation:18.3f}   "
              f"{leak.classifier_accuracy:19.3f}")
    print("=> random injection dilutes but never eliminates the channel; "
          "TPRAC removes it entirely.")


if __name__ == "__main__":
    main()
