#!/usr/bin/env python3
"""Worst-case validation: run the attacks the analysis only predicts.

Three checks that tie the analytical security model to the live
simulator:

1. **Feinting, executed** — drive the paper's worst-case access
   pattern against TPRAC and compare the target row's measured peak
   counter with the Equations-(2)-(5) bound.
2. **Safety monitor** — assert no row ever reaches the RowHammer
   threshold while TPRAC runs, under hammering.
3. **ACB-RFM channel (Figure 2(b))** — show that even the JEDEC
   Targeted-RFM flow leaks activity levels, and that TPRAC flattens
   the observable RFM counts.

Run:  python examples/worst_case_validation.py
"""

from repro.analysis.safety import SafetyMonitor
from repro.attacks.acb_channel import AcbRfmChannel
from repro.attacks.feinting_sim import FeintingAttack
from repro.attacks.probes import bank_address
from repro.controller.controller import MemoryController
from repro.controller.request import MemRequest
from repro.core.engine import Engine
from repro.dram.config import small_test_config
from repro.mitigations.tprac import TpracPolicy


def feinting_check() -> None:
    print("=== 1. Executed Feinting vs analytical TMAX ===")
    print("pool   measured-peak   analytical-bound   alerts")
    for pool in (8, 16, 32):
        result = FeintingAttack(pool_size=pool).run()
        verdict = "ok" if result.within_bound and result.defense_held else "VIOLATION"
        print(f"{pool:4d}   {result.target_peak:13d}   {result.analytical_tmax:16d}"
              f"   {result.alerts:6d}   {verdict}")


def safety_check() -> None:
    print("\n=== 2. RowHammer safety under sustained hammering ===")
    nbo = 64
    config = small_test_config(nbo=nbo).with_prac(nbo=nbo, abo_act=0)
    controller = MemoryController(
        Engine(), config, policy=TpracPolicy(tb_window=1500.0),
        enable_refresh=False,
    )
    monitor = SafetyMonitor(controller.channel, threshold=nbo)
    state = {"n": 0}

    def issue(req=None):
        if state["n"] >= 1000:
            return
        row = 10 if state["n"] % 2 else 11
        state["n"] += 1
        controller.enqueue(
            MemRequest(phys_addr=bank_address(controller, 0, row), on_complete=issue)
        )

    issue()
    controller.engine.run(until=200_000_000)
    print(f"1000 hammering accesses on a row pair: {monitor.report()}")


def acb_check() -> None:
    print("\n=== 3. ACB-RFM activity channel (Figure 2(b)) ===")
    message = [1, 0, 1, 1, 0, 0, 1, 0]
    for defense in ("acb", "tprac"):
        result = AcbRfmChannel(bat=64, message=message, defense=defense).run()
        print(f"{defense:6s}: sent={message} recv={result.received_bits} "
              f"err={result.error_rate:.2f} counts={result.rfm_counts_per_window}")
    print("=> ACB-RFM counts mirror the sender's activity; TPRAC's are flat.")


def main() -> None:
    feinting_check()
    safety_check()
    acb_check()


if __name__ == "__main__":
    main()
