#!/usr/bin/env python3
"""TPRAC: configure the defense and verify it closes the channel.

Walks the full defense workflow from Section 4 of the paper:

1. Solve the TB-Window for a RowHammer threshold with the Feinting
   worst-case analysis (Figure 7 / Equations 2-5).
2. Run the AES side-channel attack against the undefended system and
   against TPRAC.
3. Measure TPRAC's performance cost on a memory-intensive workload.

Run:  python examples/tprac_defense.py
"""

from repro.analysis.tb_window import tb_window_for_nrh
from repro.attacks.side_channel import AesSideChannelAttack
from repro.cpu.system import System
from repro.mitigations import NoMitigationPolicy, TpracPolicy
from repro.workloads.synthetic import homogeneous_traces

KEY = bytes.fromhex("9c0000000000000000000000000000ff")


def main() -> None:
    # 1. Configure the TB-Window ------------------------------------
    nbo = 256
    choice = tb_window_for_nrh(nbo)
    print(f"N_BO = {nbo}: worst-case-safe TB-Window = "
          f"{choice.tb_window / 1000:.2f} us ({choice.tb_window_trefi:.2f} tREFI), "
          f"TMAX = {choice.tmax} < {nbo}")

    # 2. Attack with and without the defense ------------------------
    print("\nAES side channel (key byte 0, true nibble 0x9):")
    for defense, label in ((None, "no defense"), ("tprac", "TPRAC")):
        attack = AesSideChannelAttack(
            KEY, nbo=nbo, encryptions=200, defense=defense
        )
        result = attack.run_single(target_byte=0, fixed_value=0)
        verdict = "LEAKED" if result.success else "no leak"
        print(f"  {label:12s}: recovered nibble = "
              f"{result.recovered_nibble}, RFMs seen = {len(result.rfm_times)}"
              f"  -> {verdict}")

    # 3. Performance cost --------------------------------------------
    print("\nperformance on 470.lbm (4-core, memory-intensive):")
    traces = homogeneous_traces("470.lbm", cores=4, num_accesses=2500)
    base = System(traces, policy=NoMitigationPolicy(), enable_abo=False).run()
    choice_1024 = tb_window_for_nrh(1024)
    tprac = System(traces, policy=TpracPolicy(tb_window=choice_1024.tb_window)).run()
    slowdown = (1 - tprac.total_ipc / base.total_ipc) * 100
    print(f"  baseline IPC/core : {base.total_ipc / 4:.3f}")
    print(f"  TPRAC IPC/core    : {tprac.total_ipc / 4:.3f} "
          f"({slowdown:.1f}% slowdown at N_RH=1024)")
    print(f"  TB-RFMs issued    : {tprac.rfm_total} "
          f"(all timing-based, none activity-dependent)")


if __name__ == "__main__":
    main()
