#!/usr/bin/env python3
"""PRACLeak side channel: recover AES key bits through PRAC's ABO.

Reproduces the paper's Section 3.3 attack end to end on the simulated
system:

1. A victim encrypts attacker-chosen plaintexts with a T-table AES-128
   (our from-scratch implementation, FIPS-197-verified).
2. The attacker fixes one plaintext byte and flushes the T-table cache
   lines, so the hot cache line's DRAM row accumulates ~2x activations.
3. The attacker probes the 16 candidate rows until the ABO fires; the
   triggering row reveals the top 4 bits of the key byte.

Repeating over all 16 bytes leaks 64 of the 128 key bits.

Run:  python examples/aes_key_recovery.py           (4 bytes, fast)
      python examples/aes_key_recovery.py --full    (all 16 bytes)
"""

import sys

from repro.attacks.side_channel import AesSideChannelAttack


def main() -> None:
    secret_key = bytes.fromhex("3b2a1f0c5b6e9d80c1d2e3f405162738")
    num_bytes = 16 if "--full" in sys.argv else 4

    attack = AesSideChannelAttack(secret_key, nbo=256, encryptions=200)
    print(f"attacking {num_bytes} key bytes "
          f"(N_BO=256, 200 encryptions per byte)\n")
    print("byte  true-nibble  recovered  victim-hot-acts  attacker-acts")

    recovered_bits = 0
    for index in range(num_bytes):
        result = attack.run_single(target_byte=index, fixed_value=0)
        hot = (
            max(result.victim_histogram.values())
            if result.victim_histogram
            else 0
        )
        mark = "OK" if result.success else "MISS"
        print(f"{index:4d}  {result.true_nibble:11x}  "
              f"{result.recovered_nibble if result.recovered_nibble is not None else '?':>9}  "
              f"{hot:15d}  {result.attacker_acts_on_trigger:13d}  {mark}")
        if result.success:
            recovered_bits += 4

    print(f"\nrecovered {recovered_bits} of {num_bytes * 4} targeted key bits "
          f"(the attack leaks the top nibble of each byte: 64 of 128 "
          f"bits over a full 16-byte sweep)")
    print("=> the most-activated row's identity leaks through the "
          "activation-count timing channel.")


if __name__ == "__main__":
    main()
