#!/usr/bin/env python3
"""Quickstart: simulate a PRAC-enabled DDR5 system and watch the
Alert Back-Off protocol create an observable timing channel.

This builds the full stack from the public API:

1. a DDR5-8000B device with PRAC counters (N_BO = 256),
2. a memory controller with the ABO-Only mitigation policy,
3. a "victim" hammering one row pair, and
4. an "attacker" latency probe in a different bank.

The probe never touches the victim's rows, yet it sees the victim's
activity as a latency spike — the paper's core observation.

Run:  python examples/quickstart.py
"""

from repro import Engine, MemoryController, AboOnlyPolicy, ddr5_8000b
from repro.attacks.probes import LatencyProbe, RowHammerSender, is_rfm_spike


def main() -> None:
    nbo = 256
    config = ddr5_8000b().with_prac(nbo=nbo, prac_level=1, abo_act=0)
    engine = Engine()
    controller = MemoryController(engine, config, policy=AboOnlyPolicy())

    # Attacker: closed-loop latency probe on bank 4, row-buffer hits
    # only (its own PRAC counters never move).
    probe = LatencyProbe(controller, bank=4, mode="same_row", core_id=1)
    probe.start()

    # Victim: hammer rows 10/11 of bank 0 to the Back-Off threshold.
    sender = RowHammerSender(controller, bank=0, core_id=0)
    engine.schedule(5_000.0, lambda: sender.hammer(10, target_acts=nbo, decoy_row=11))

    engine.run(until=60_000.0)
    probe.stop()

    print(f"simulated {engine.now / 1000:.1f} us; "
          f"probe completed {len(probe.result.latencies)} accesses")
    print(f"victim row-10 activations: {controller.channel.bank(0).counter(10)} "
          f"(mitigated on ABO)")
    print(f"ABO alerts: {controller.abo.alert_count}, "
          f"RFMs issued: {controller.stats.rfm_count()}")

    spikes = [
        (t, lat)
        for t, lat in zip(probe.result.times, probe.result.latencies)
        if is_rfm_spike(lat, t, config.timing)
    ]
    print(f"\nattacker-visible RFM spikes ({len(spikes)}):")
    for t, lat in spikes[:5]:
        print(f"  t={t/1000:8.2f} us   latency={lat:6.0f} ns "
              f"(baseline ~{probe.result.mean_latency:.0f} ns)")
    if spikes:
        print("\n=> the victim's row activations are visible system-wide: "
              "this is the PRACLeak timing channel.")


if __name__ == "__main__":
    main()
