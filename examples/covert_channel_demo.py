#!/usr/bin/env python3
"""PRACLeak covert channels: send a secret message between processes.

Demonstrates both channels from Section 3.2 of the paper:

* the activity-based channel (1 bit per window, no shared rows), and
* the activation-count channel (log2 N_BO bits per window via a
  shared DRAM row) — the faster of the two.

The trojan encodes the ASCII message into row activations; the spy
decodes it purely from its own memory access latencies.

Run:  python examples/covert_channel_demo.py
"""

from repro.attacks.covert import ActivationCountChannel, ActivityChannel


def text_to_bits(text: str) -> list:
    return [(byte >> (7 - i)) & 1 for byte in text.encode() for i in range(8)]


def bits_to_text(bits: list) -> str:
    out = bytearray()
    for i in range(0, len(bits) - 7, 8):
        out.append(sum(b << (7 - j) for j, b in enumerate(bits[i: i + 8])))
    return out.decode(errors="replace")


def main() -> None:
    secret = "hi!"
    nbo = 256

    print(f"=== Activity-based channel (N_BO={nbo}) ===")
    message = text_to_bits(secret)
    result = ActivityChannel(nbo=nbo, message=message).run()
    print(f"sent     : {secret!r} ({len(message)} bits)")
    print(f"received : {bits_to_text(result.received_bits)!r}")
    print(f"period   : {result.period_us:.1f} us/bit, "
          f"bitrate {result.bitrate_kbps:.1f} Kbps, "
          f"error rate {result.error_rate:.3f}")

    print(f"\n=== Activation-count channel (N_BO={nbo}) ===")
    values = list(secret.encode())  # one byte per window (8 bits/symbol)
    result = ActivationCountChannel(nbo=nbo, values=values).run()
    decoded = bits_to_text(result.received_bits)
    print(f"sent     : {secret!r} ({len(values)} symbols x "
          f"{result.bits_per_symbol} bits)")
    print(f"received : {decoded!r}")
    print(f"period   : {result.period_us:.1f} us/symbol, "
          f"bitrate {result.bitrate_kbps:.1f} Kbps, "
          f"error rate {result.error_rate:.3f}")
    print("\n=> sharing a DRAM row lets the sender encode a full byte "
          "in the row's activation counter per window.")


if __name__ == "__main__":
    main()
