PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify smoke test suite bench bench-smoke bench-artifacts

verify:            ## tier-1 tests + 2-artifact parallel suite run
	./scripts/verify.sh

smoke:             ## fast regression net only (collection/registry/runner/CLI)
	$(PYTHON) -m pytest -q -m smoke

test:              ## full tier-1 test suite
	$(PYTHON) -m pytest -x -q

suite:             ## all registered artifacts, parallel + cached
	$(PYTHON) -m repro.cli suite --out results

bench:             ## kernel throughput on the pinned workloads -> trajectory
	$(PYTHON) -m repro.cli bench

bench-smoke:       ## single-rep bench run (CI-friendly, soft compare)
	$(PYTHON) -m repro.cli bench --smoke --out "$${BENCH_OUT:-bench-results}"

bench-artifacts:   ## per-artifact regeneration benchmarks (pytest-benchmark)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
