PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify smoke test suite bench bench-smoke bench-artifacts lint lints typecheck coverage

verify:            ## tier-1 tests + 2-artifact parallel suite run
	./scripts/verify.sh

smoke:             ## fast regression net only (collection/registry/runner/CLI)
	$(PYTHON) -m pytest -q -m smoke

test:              ## full tier-1 test suite
	$(PYTHON) -m pytest -x -q

lint:              ## ruff + the custom invariant lints (the CI lint gate)
	ruff check .
	$(MAKE) lints

lints:             ## project-specific AST lints only (no dependencies)
	$(PYTHON) -m tools.repro_lints

typecheck:         ## mypy over src/repro (strictness table in pyproject.toml)
	$(PYTHON) -m mypy

coverage:          ## tier-1 suite under coverage; needs `pip install pytest-cov`
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term --cov-report=xml

suite:             ## all registered artifacts, parallel + cached
	$(PYTHON) -m repro.cli suite --out results

bench:             ## kernel throughput on the pinned workloads -> trajectory
	$(PYTHON) -m repro.cli bench

bench-smoke:       ## single-rep bench run (CI-friendly, soft compare)
	$(PYTHON) -m repro.cli bench --smoke --out "$${BENCH_OUT:-bench-results}"

bench-artifacts:   ## per-artifact regeneration benchmarks (pytest-benchmark)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
