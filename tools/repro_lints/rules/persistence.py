"""``float-format-drift``: persisted results carry full-precision floats.

Campaign results, experiment artifacts and bench trajectories are
byte-compared — across resumed runs, across the multiprocess pool, and
by CI's determinism legs.  ``repr(float)`` (what :mod:`json` emits) is
exact and stable; the moment a writer rounds (``round(x, 3)``) or
formats (``f"{x:.3f}"``) a value *before* persisting it, two runs that
differ only below the rounding threshold collide, resumability checks
pass vacuously, and downstream analysis quietly loses precision.

Scope: the modules that write persisted artifacts.  Display layers
(reports, table renderers) format freely — they are not in scope.
Genuinely presentational values inside a writer (e.g. an advisory
wall-clock duration) carry an inline waiver.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.repro_lints.base import Module, Rule, Violation, register

#: format-spec presentation types that lose float precision
_FLOAT_SPEC_RE = re.compile(r"\.\d+[efg%]|[efg%]$")


def _float_spec(spec: str) -> bool:
    return bool(_FLOAT_SPEC_RE.search(spec))


@register
class FloatFormatDriftRule(Rule):
    """Forbid rounding/formatting floats in persisted-result writers."""

    name = "float-format-drift"
    rationale = (
        "persisted artifacts are byte-compared; rounding or formatting "
        "floats before writing destroys precision and makes distinct "
        "runs collide"
    )
    scope = (
        "src/repro/analysis/storage.py",
        "src/repro/campaigns/trials.py",
        "src/repro/experiments/runner.py",
        "src/repro/bench/harness.py",
    )

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "round":
                    yield self.violation(
                        module,
                        node,
                        "round() in a persisted-result writer loses "
                        "precision; store repr-exact floats",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "format"
                    and isinstance(func.value, ast.Constant)
                    and isinstance(func.value.value, str)
                    and _FLOAT_SPEC_RE.search(func.value.value)
                ):
                    yield self.violation(
                        module,
                        node,
                        "float format spec in a persisted-result writer; "
                        "store repr-exact floats",
                    )
            elif isinstance(node, ast.FormattedValue):
                spec = node.format_spec
                if spec is None:
                    continue
                # format_spec is a JoinedStr; only constant specs are
                # inspectable — dynamic specs are rare enough to ignore.
                parts = [
                    v.value
                    for v in spec.values
                    if isinstance(v, ast.Constant) and isinstance(v.value, str)
                ]
                if any(_float_spec(p) for p in parts):
                    yield self.violation(
                        module,
                        node,
                        "float format spec in a persisted-result writer; "
                        "store repr-exact floats",
                    )
