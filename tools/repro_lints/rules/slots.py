"""``slots-required``: hot-path record classes must declare ``__slots__``.

The engine allocates one :class:`Event` per scheduled callback and one
:class:`MemRequest` per memory access — millions per campaign.  Without
``__slots__`` each instance carries a per-object ``__dict__`` (~2x the
memory, slower attribute access); with it, accidental attribute
creation (a typo'd assignment in a scheduler) raises instead of
silently spawning state the rest of the pipeline never sees.  The
sanitizer's per-bank shadow state rides the same hot path when enabled.

The rule pins specific (module, class) pairs rather than guessing at
"hotness" from heuristics: extending it is one entry in
:data:`SLOTTED_CLASSES`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from tools.repro_lints.base import Module, Rule, Violation, register

#: module path -> class names that must declare ``__slots__``.
SLOTTED_CLASSES: Dict[str, Tuple[str, ...]] = {
    "src/repro/core/engine.py": ("Event",),
    "src/repro/controller/request.py": ("MemRequest",),
    "src/repro/dram/sanitizer.py": ("_BankState",),
}


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        if any(
            isinstance(target, ast.Name) and target.id == "__slots__"
            for target in targets
        ):
            return True
    return False


@register
class SlotsRequiredRule(Rule):
    """Require ``__slots__`` on designated hot-path classes."""

    name = "slots-required"
    rationale = (
        "hot-path records are allocated millions of times per campaign; "
        "__slots__ halves their footprint and turns attribute typos "
        "into errors"
    )
    scope = tuple(SLOTTED_CLASSES)

    def check(self, module: Module) -> Iterator[Violation]:
        required = set(SLOTTED_CLASSES.get(module.path, ()))
        if not required:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in required and not _declares_slots(node):
                yield self.violation(
                    module,
                    node,
                    f"hot-path class {node.name} must declare __slots__",
                )
