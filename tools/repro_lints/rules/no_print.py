"""Library-code print ban.

With the structured logger in :mod:`repro.obs.log` and the heartbeat
stream carrying progress, a bare ``print(...)`` in library code is
always a mistake: it bypasses ``--verbose``/``--quiet``, interleaves
with the result tables the CLI writes to stdout (which ``verify.sh``
greps byte-exactly), and cannot be captured by campaign telemetry.
The only layers that legitimately talk to the terminal are the CLI
front-end (``src/repro/cli.py``) and the observability package itself
(``src/repro/obs/``, whose progress renderer and logger own the
streams).  Anything else should call ``repro.obs.log.get_logger()`` —
or, for genuine one-off tooling output, carry an inline
``# repro-lint: allow(no-print)`` waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lints.base import Module, Rule, Violation, register

#: layers allowed to write to the terminal directly
_EXEMPT_PREFIXES = ("src/repro/cli.py", "src/repro/obs/")


@register
class NoPrintRule(Rule):
    """Forbid bare ``print(...)`` outside the CLI and obs layers."""

    name = "no-print"
    rationale = (
        "library code must log via repro.obs.log (honors --verbose/--quiet, "
        "keeps stdout byte-stable for result tables); print() is reserved "
        "for the CLI front-end and the obs package"
    )
    scope = ("src/repro/",)

    def applies_to(self, path: str) -> bool:
        if not super().applies_to(path):
            return False
        return not any(path.startswith(prefix) for prefix in _EXEMPT_PREFIXES)

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    module,
                    node,
                    "print() in library code; use repro.obs.log.get_logger() "
                    "(or stream-returning formatters) instead",
                )
