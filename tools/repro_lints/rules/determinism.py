"""Determinism rules for the simulation core.

The repo's result identity rests on bit-reproducible runs: scenario IDs
are content hashes, campaign results are byte-compared on resume, and
CI byte-compares artifacts across processes.  These rules keep the
three classic nondeterminism leaks out of the hot packages
(``core`` / ``controller`` / ``dram`` / ``prac`` / ``mitigations``):

* ``unseeded-random`` — the module-level :mod:`random` functions (and
  ``random.Random()`` without a seed) draw from process-global state;
  any use makes results depend on import order and host entropy.
  Seeded ``random.Random(seed)`` instances are fine — that is how the
  obfuscation defense injects *reproducible* noise.
* ``wall-clock`` — ``time.time()`` & friends tie results to the host
  clock.  Simulation time is ``Engine.now``; wall-clock belongs only in
  harness/reporting layers.
* ``iteration-order`` — iterating a ``set`` observes hash order, which
  varies across processes for str-keyed sets (PYTHONHASHSEED).  Iterate
  ``sorted(...)`` instead, or keep a list/dict (insertion-ordered).

The scope deliberately includes the engine tier's worker-side code
(``controller/batched.py``, ``controller/sharded.py``): the sharded
backend's run-twice determinism holds only if the per-channel worker
processes are free of wall-clock reads and unseeded randomness, so
those files answer to exactly the same rules as the in-process core.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lints.base import Module, Rule, Violation, register

HOT_SCOPE = (
    "src/repro/core/",
    "src/repro/controller/",
    "src/repro/dram/",
    "src/repro/prac/",
    "src/repro/mitigations/",
)


def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _attr_of(node: ast.AST, modules: tuple) -> str:
    """``"mod.attr"`` when node is an Attribute on one of ``modules``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in modules
    ):
        return f"{node.value.id}.{node.attr}"
    return ""


@register
class UnseededRandomRule(Rule):
    """Forbid process-global RNG state in the simulation core."""

    name = "unseeded-random"
    rationale = (
        "module-level random.* draws from process-global state; results "
        "would depend on import order and host entropy instead of the "
        "scenario seed"
    )
    scope = HOT_SCOPE

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.violation(
                    module,
                    node,
                    "import the module and build seeded random.Random(seed) "
                    "instances; from-imports hide the global-state functions",
                )
            elif isinstance(node, ast.Call):
                dotted = _attr_of(node.func, ("random",))
                if not dotted:
                    continue
                if dotted == "random.Random":
                    if not node.args and not node.keywords:
                        yield self.violation(
                            module,
                            node,
                            "random.Random() without a seed is entropy-"
                            "seeded; pass an explicit seed",
                        )
                else:
                    yield self.violation(
                        module,
                        node,
                        f"{dotted}() uses the process-global RNG; use a "
                        "seeded random.Random(seed) instance",
                    )


@register
class WallClockRule(Rule):
    """Forbid host-clock reads in the simulation core."""

    name = "wall-clock"
    rationale = (
        "simulation time is Engine.now; host-clock reads make results "
        "machine- and load-dependent"
    )
    scope = HOT_SCOPE

    _FORBIDDEN = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
    }

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            dotted = _attr_of(node, ("time", "datetime"))
            if dotted in self._FORBIDDEN:
                yield self.violation(
                    module,
                    node,
                    f"{dotted} reads the host clock; simulation code must "
                    "use Engine.now",
                )
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                names = {alias.name for alias in node.names}
                clocky = sorted(
                    names
                    & {n.split(".", 1)[1] for n in self._FORBIDDEN if n.startswith("time.")}
                )
                if clocky:
                    yield self.violation(
                        module,
                        node,
                        f"from time import {', '.join(clocky)} brings host-"
                        "clock reads into simulation code",
                    )


def _set_expression(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a set (literal, comp, or set())."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and _is_name(node.func, "set"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: s1 | s2, s1 & s2, s1 - s2 — only flag when a
        # side is itself recognizably a set, to avoid int arithmetic.
        return _set_expression(node.left) or _set_expression(node.right)
    return False


@register
class IterationOrderRule(Rule):
    """Forbid iterating sets (hash order) in the simulation core."""

    name = "iteration-order"
    rationale = (
        "set iteration observes hash order, which differs across "
        "processes for str elements (PYTHONHASHSEED); iterate "
        "sorted(...) or an insertion-ordered list/dict"
    )
    scope = HOT_SCOPE

    def _iter_targets(self, tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield gen.iter
            elif (
                isinstance(node, ast.Call)
                and _is_name(node.func, "enumerate")
                and node.args
            ):
                yield node.args[0]

    def check(self, module: Module) -> Iterator[Violation]:
        for target in self._iter_targets(module.tree):
            if _set_expression(target):
                yield self.violation(
                    module,
                    target,
                    "iterating a set observes hash order; wrap in sorted() "
                    "or keep an ordered container",
                )
