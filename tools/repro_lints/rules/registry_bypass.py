"""``registry-bypass``: component classes are constructed via registries.

PR 5 made schedulers, address mappings, refresh policies and mitigation
policies registry-backed (:mod:`repro.registry`): ``SCHEDULERS`` /
``MAPPINGS`` / ``REFRESH_POLICIES`` / ``MITIGATIONS`` own the
name→factory mapping, and :class:`repro.config.SystemConfig` resolves
names declaratively.  PR 9 extended the same discipline to the cache
hierarchy and interconnect axes (``CACHES`` / ``INTERCONNECTS``), and
the engine tier added execution backends (``ENGINES``: the event
kernel, the batched controller loop, the sharded channel workers).  Direct ``FrFcfsScheduler()``-style construction
outside the defining module silently bypasses that layer: the call
site stops honoring registry aliases, misses factory-side defaulting
(e.g. ``mitigations.make_policy`` wiring), and drifts from what
campaign scenarios can express.

The rule flags any call whose callee *name* is a registered component
class, except inside the module that defines (and registers) it.
Subclassing stays free — only instantiation is routed through the
registries.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from tools.repro_lints.base import Module, Rule, Violation, register

#: Registered component class -> (defining module, registry spelling).
#: The defining module is exempt (it registers the factory); so is
#: ``mitigations/__init__.py``, which builds the MITIGATIONS table.
COMPONENT_CLASSES: Dict[str, tuple] = {
    # controller/scheduler.py — SCHEDULERS
    "FrFcfsScheduler": ("src/repro/controller/scheduler.py", 'SCHEDULERS.get("fr_fcfs")'),
    "FcfsScheduler": ("src/repro/controller/scheduler.py", 'SCHEDULERS.get("fcfs")'),
    "FrFcfsCapScheduler": ("src/repro/controller/scheduler.py", 'SCHEDULERS.get("fr_fcfs_cap")'),
    # dram/address.py — MAPPINGS
    "LinearMapping": ("src/repro/dram/address.py", 'MAPPINGS.get("linear")'),
    "MopMapping": ("src/repro/dram/address.py", 'MAPPINGS.get("mop")'),
    # dram/refresh.py — REFRESH_POLICIES
    "RefreshScheduler": ("src/repro/dram/refresh.py", 'REFRESH_POLICIES.get("periodic")'),
    "StaggeredRefreshScheduler": ("src/repro/dram/refresh.py", 'REFRESH_POLICIES.get("staggered")'),
    # mitigations/* — MITIGATIONS (factory helper: mitigations.make_policy)
    "NoMitigationPolicy": ("src/repro/mitigations/base.py", 'make_policy("none")'),
    "AboOnlyPolicy": ("src/repro/mitigations/abo_only.py", 'make_policy("abo_only")'),
    "AcbRfmPolicy": ("src/repro/mitigations/acb_rfm.py", 'make_policy("abo_acb")'),
    "TpracPolicy": ("src/repro/mitigations/tprac.py", 'make_policy("tprac")'),
    "ObfuscationPolicy": ("src/repro/mitigations/obfuscation.py", 'make_policy("obfuscation")'),
    "PerBankRfmPolicy": ("src/repro/mitigations/rfmpb.py", 'make_policy("rfmpb")'),
    "QpracPolicy": ("src/repro/mitigations/qprac.py", 'make_policy("qprac")'),
    # cpu/hierarchy.py — CACHES
    "MemoryHierarchy": ("src/repro/cpu/hierarchy.py", 'CACHES.get("l1l2")'),
    # cpu/interconnect.py — INTERCONNECTS
    "FixedLatencyInterconnect": (
        "src/repro/cpu/interconnect.py", 'INTERCONNECTS.get("fixed")'
    ),
    "CrossbarInterconnect": (
        "src/repro/cpu/interconnect.py", 'INTERCONNECTS.get("crossbar")'
    ),
    # core/engines.py + controller/{batched,sharded}.py — ENGINES
    "EngineBackend": ("src/repro/core/engines.py", 'ENGINES.make("event")'),
    "BatchedEngineBackend": (
        "src/repro/controller/batched.py", 'ENGINES.make("batched")'
    ),
    "BatchedMemoryController": (
        "src/repro/controller/batched.py",
        'ENGINES.make("batched").make_controller(...)',
    ),
    "ShardedEngineBackend": (
        "src/repro/controller/sharded.py", 'ENGINES.make("sharded")'
    ),
    "ShardedMemorySystem": (
        "src/repro/controller/sharded.py",
        'ENGINES.make("sharded").make_memory(...)',
    ),
}

#: Modules allowed to construct any component directly: the registry
#: assembly points themselves.
_ASSEMBLY_MODULES = (
    "src/repro/mitigations/__init__.py",
    # ENGINES assembly point: its late-bound factories construct the
    # backend classes they register.
    "src/repro/core/engines.py",
)


def _callee_name(node: ast.Call) -> str:
    """Bare or attribute-qualified callee class name, else ''."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class RegistryBypassRule(Rule):
    """Forbid direct construction of registry-backed components."""

    name = "registry-bypass"
    rationale = (
        "schedulers/mappings/refresh/mitigations are registry-backed; "
        "direct construction bypasses name resolution and factory "
        "defaulting and drifts from what scenarios can express"
    )
    scope = ("src/repro/",)

    def applies_to(self, path: str) -> bool:
        if not super().applies_to(path):
            return False
        if path in _ASSEMBLY_MODULES:
            return False
        return True

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node)
            entry = COMPONENT_CLASSES.get(name)
            if entry is None:
                continue
            defining_module, registry_form = entry
            if module.path == defining_module:
                continue
            yield self.violation(
                module,
                node,
                f"construct {name} via its registry "
                f"({registry_form}), not directly",
            )
