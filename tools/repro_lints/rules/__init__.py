"""Rule modules for the repro lint suite.

Importing this package imports every rule module, which registers its
rules with :data:`tools.repro_lints.base.RULES` via the ``@register``
decorator.  Adding a rule module = write it + import it here.
"""

from tools.repro_lints.rules import (  # noqa: F401  (imported for registration)
    determinism,
    no_print,
    persistence,
    registry_bypass,
    slots,
)
