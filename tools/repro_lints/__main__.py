"""CLI entry point: ``python -m tools.repro_lints [paths...]``.

Exit status 0 when clean, 1 when any violation survives its waivers —
so the module slots directly into ``make lints`` and CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from tools.repro_lints import RULES, lint_paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lints",
        description="Project-specific invariant lints for the repro simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="list the registered rules with their rationale and exit",
    )
    args = parser.parse_args(argv)

    if args.explain:
        for rule_cls in RULES:
            print(f"{rule_cls.name}")
            print(f"    {rule_cls.rationale}")
            if rule_cls.scope:
                print(f"    scope: {', '.join(rule_cls.scope)}")
        return 0

    violations = lint_paths(args.paths)
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
