"""Rule plumbing for the repo's custom AST lint suite.

A rule is a subclass of :class:`Rule` registered with :func:`register`.
Rules are pure functions over a parsed module: they receive a
:class:`Module` (AST + source + repo-relative path) and yield
:class:`Violation` records.  The runner (``tools.repro_lints.run``)
parses each file once and dispatches it to every rule whose
:meth:`Rule.applies_to` accepts the path, so adding a rule is one new
module under ``tools/repro_lints/rules/`` — no runner changes.

Deliberate exceptions are waived inline with a marker comment on the
offending line::

    "elapsed_seconds": round(t, 3),  # repro-lint: allow(float-format-drift)

Waivers are per-rule and per-line; the runner drops waived violations
after the rule ran, so rules never need waiver logic themselves.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Type

#: Inline waiver marker: ``# repro-lint: allow(rule-name)``.
WAIVER_RE = re.compile(r"#\s*repro-lint:\s*allow\(([a-z0-9-]+)\)")


@dataclass(frozen=True)
class Violation:
    """One lint finding, formatted ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Module:
    """One parsed source file handed to the rules."""

    path: str           # repo-relative, forward slashes
    source: str
    tree: ast.Module

    def lines(self) -> List[str]:
        return self.source.splitlines()


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (the waiver/reporting identifier),
    :attr:`rationale` (one line: why the invariant matters — surfaced
    by ``--explain``) and implement :meth:`check`.  :attr:`scope`
    restricts the rule to repo-relative path prefixes; an empty scope
    means every linted file.
    """

    name = "base"
    rationale = ""
    #: path prefixes (repo-relative, '/'-separated) this rule covers
    scope: tuple = ()

    def applies_to(self, path: str) -> bool:
        if not self.scope:
            return True
        return any(path.startswith(prefix) for prefix in self.scope)

    def check(self, module: Module) -> Iterator[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def violation(
        self, module: Module, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


#: All registered rule classes, in registration order.
RULES: List[Type[Rule]] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the suite."""
    if any(existing.name == rule_cls.name for existing in RULES):
        raise ValueError(f"lint rule {rule_cls.name!r} already registered")
    RULES.append(rule_cls)
    return rule_cls


def waived(module: Module, violation: Violation) -> bool:
    """Whether the violation's line carries a matching waiver marker."""
    lines = module.lines()
    if not 1 <= violation.line <= len(lines):
        return False
    match = WAIVER_RE.search(lines[violation.line - 1])
    return bool(match) and match.group(1) == violation.rule


def run_rules(module: Module, rules: Iterable[Rule]) -> List[Violation]:
    """All non-waived violations from ``rules`` against one module."""
    out: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(module.path):
            continue
        for violation in rule.check(module):
            if not waived(module, violation):
                out.append(violation)
    return out
