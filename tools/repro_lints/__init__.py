"""Custom AST lint suite enforcing this repo's simulation invariants.

Generic linters check style; this suite checks the *project's* rules —
determinism of the simulation core, registry-mediated component
construction, ``__slots__`` on hot-path records, and full-precision
floats in persisted artifacts.  Rules are AST-based (no imports of the
checked code), plugin-registered (one module per concern under
``rules/``), and waivable per line with ``# repro-lint: allow(rule)``.

Run standalone::

    python -m tools.repro_lints            # lint src/repro
    python -m tools.repro_lints path ...   # lint specific files/trees
    python -m tools.repro_lints --explain  # list rules + rationale

or via ``make lints`` (also part of ``make lint`` / CI's lint job).
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from tools.repro_lints.base import RULES, Module, Rule, Violation, run_rules
import tools.repro_lints.rules  # noqa: F401  (registers the rule suite)

__all__ = ["RULES", "Module", "Rule", "Violation", "lint_paths", "lint_source"]


def _repo_relative(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), root)
    return rel.replace(os.sep, "/")


def _python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                out.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        else:
            out.append(path)
    return out


def lint_source(
    source: str, path: str, rules: Optional[Iterable[Rule]] = None
) -> List[Violation]:
    """Lint one in-memory module; ``path`` selects rule scopes."""
    tree = ast.parse(source, filename=path)
    module = Module(path=path, source=source, tree=tree)
    active = list(rules) if rules is not None else [cls() for cls in RULES]
    return run_rules(module, active)


def lint_paths(
    paths: Sequence[str], root: Optional[str] = None
) -> List[Violation]:
    """Lint files/directories; paths are scoped repo-relative to ``root``
    (default: the current working directory)."""
    base = os.path.abspath(root or os.getcwd())
    rules = [cls() for cls in RULES]
    violations: List[Violation] = []
    for filename in _python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        rel = _repo_relative(filename, base)
        violations.extend(lint_source(source, rel, rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
